//! Static checks for surface-language programs.
//!
//! Catches before execution the mistakes that would otherwise surface as
//! runtime [`crate::PplError`]s mid-inference:
//!
//! - **use of possibly-undefined variables** (path-sensitive: a variable
//!   assigned in only one branch of an `if`, or only inside a loop body,
//!   is not definitely defined afterwards);
//! - **duplicate site labels** that would collide at runtime (two random
//!   expressions with the same label on one execution path at the same
//!   loop depth);
//! - **obvious type errors** (an array used where a number is needed, a
//!   number indexed like an array) via a simple abstract interpretation;
//! - **dead or vacuous probabilistic structure**: variables assigned but
//!   never read, branches whose condition is a constant, and
//!   observations whose success probability is statically 0 or 1.
//!
//! Every diagnostic carries a stable machine-readable code (`PPL001`,
//! …), and — when the program was parsed with
//! [`crate::parser::parse_with_spans`] — the source position of the
//! offending statement:
//!
//! | code     | severity | meaning                                          |
//! |----------|----------|--------------------------------------------------|
//! | `PPL001` | error    | variable used before being defined               |
//! | `PPL002` | warning  | variable possibly undefined (path-dependent)     |
//! | `PPL003` | error    | duplicate site label on one execution path       |
//! | `PPL004` | error    | type error (array/number misuse)                 |
//! | `PPL005` | warning  | element assignment to a possibly-undefined array |
//! | `PPL010` | warning  | variable assigned but never read                 |
//! | `PPL011` | warning  | statically unreachable branch or loop body       |
//! | `PPL012` | warning  | observation statically certain (probability 1)   |
//! | `PPL013` | error    | observation statically impossible (probability 0)|

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::ast::{Block, Expr, Program, RandExpr, RandKind, Stmt};
use crate::interp::{apply_binary, apply_unary};
use crate::parser::{Span, SpanTable};
use crate::value::Value;

/// Severity of a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Will (or is very likely to) fail at runtime.
    Error,
    /// Suspicious but possibly intentional.
    Warning,
}

/// One finding of the checker.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// How severe the finding is.
    pub severity: Severity,
    /// Stable machine-readable code (`"PPL001"`, …).
    pub code: &'static str,
    /// Source position of the offending statement, when the program was
    /// checked with a [`SpanTable`] (see [`check_with_spans`]).
    pub span: Option<Span>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(span) = self.span {
            write!(f, "{span}: ")?;
        }
        let kind = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(f, "{kind}[{}]: {}", self.code, self.message)
    }
}

/// A coarse abstract type for the flow analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AbsType {
    Number,
    Array,
    Unknown,
}

impl AbsType {
    fn join(self, other: AbsType) -> AbsType {
        if self == other {
            self
        } else {
            AbsType::Unknown
        }
    }
}

/// Definedness of a variable at a program point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Defined {
    Definitely,
    Maybe,
}

#[derive(Debug, Clone, Default)]
struct Env {
    vars: HashMap<String, (Defined, AbsType)>,
}

impl Env {
    fn define(&mut self, name: &str, ty: AbsType) {
        self.vars
            .insert(name.to_string(), (Defined::Definitely, ty));
    }

    /// Merge of two branch outcomes: defined only if defined in both.
    fn join(mut self, other: Env) -> Env {
        let mut merged = HashMap::new();
        for (name, (d1, t1)) in self.vars.drain() {
            match other.vars.get(&name) {
                Some((d2, t2)) => {
                    let d = if d1 == Defined::Definitely && *d2 == Defined::Definitely {
                        Defined::Definitely
                    } else {
                        Defined::Maybe
                    };
                    merged.insert(name, (d, t1.join(*t2)));
                }
                None => {
                    merged.insert(name, (Defined::Maybe, t1));
                }
            }
        }
        for (name, (_, t)) in other.vars {
            merged.entry(name).or_insert((Defined::Maybe, t));
        }
        Env { vars: merged }
    }
}

struct Checker<'a> {
    diagnostics: Vec<Diagnostic>,
    spans: Option<&'a SpanTable>,
    /// Pre-order index of the next statement to enter (matches the
    /// parser's statement numbering).
    next_index: usize,
    /// Span of the statement currently being checked.
    current: Option<Span>,
}

/// Checks `program`, returning all diagnostics (errors first).
pub fn check(program: &Program) -> Vec<Diagnostic> {
    check_with_spans(program, None)
}

/// Checks `program` with source positions from `spans` (as produced by
/// [`crate::parser::parse_with_spans`]) attached to each diagnostic.
///
/// # Examples
///
/// ```
/// let (p, spans) = ppl::parse_with_spans("x = 1;\ny = ghost;\nreturn y;")?;
/// let diags = ppl::check::check_with_spans(&p, Some(&spans));
/// assert_eq!(diags[0].code, "PPL001");
/// assert_eq!(diags[0].span.unwrap().line, 2);
/// # Ok::<(), ppl::PplError>(())
/// ```
pub fn check_with_spans(program: &Program, spans: Option<&SpanTable>) -> Vec<Diagnostic> {
    let mut checker = Checker {
        diagnostics: Vec::new(),
        spans,
        next_index: 0,
        current: None,
    };
    let mut env = Env::default();
    let mut path_sites = HashSet::new();
    checker.check_block(&program.body, &mut env, &mut path_sites, 0);
    checker.current = spans.and_then(|t| t.ret);
    if let Some(ret) = &program.ret {
        checker.check_expr(ret, &env, &mut path_sites, 0);
    }
    checker.check_unused(program);
    checker.diagnostics.sort_by_key(|d| {
        (
            d.severity != Severity::Error,
            d.code,
            d.span,
            d.message.clone(),
        )
    });
    checker.diagnostics.dedup();
    checker.diagnostics
}

/// Convenience: parse-and-check error count is zero.
pub fn is_clean(program: &Program) -> bool {
    check(program).iter().all(|d| d.severity != Severity::Error)
}

/// Evaluates a variable- and randomness-free expression to a constant.
fn const_value(expr: &Expr) -> Option<Value> {
    match expr {
        Expr::Const(v) => Some(v.clone()),
        Expr::Unary(op, e) => apply_unary(*op, &const_value(e)?).ok(),
        Expr::Binary(op, a, b) => apply_binary(*op, &const_value(a)?, &const_value(b)?).ok(),
        Expr::Ternary(c, t, e) => {
            if const_value(c)?.truthy().ok()? {
                const_value(t)
            } else {
                const_value(e)
            }
        }
        _ => None,
    }
}

impl Checker<'_> {
    fn error(&mut self, code: &'static str, message: String) {
        self.diagnostics.push(Diagnostic {
            severity: Severity::Error,
            code,
            span: self.current,
            message,
        });
    }

    fn warning(&mut self, code: &'static str, message: String) {
        self.diagnostics.push(Diagnostic {
            severity: Severity::Warning,
            code,
            span: self.current,
            message,
        });
    }

    /// Flags variables that are assigned somewhere but read nowhere —
    /// dead state that silently widens every dependence slice. Loop
    /// variables are exempt (iterating without using the index is
    /// idiomatic).
    fn check_unused(&mut self, program: &Program) {
        let effects = crate::analysis::infer_effects(program);
        let mut used: HashSet<&str> = effects.ret_reads.iter().map(String::as_str).collect();
        for facts in &effects.stmts {
            used.extend(facts.head.reads.iter().map(String::as_str));
        }
        let mut reported = HashSet::new();
        for facts in &effects.stmts {
            for name in &facts.head.writes {
                if facts.loop_var.as_deref() == Some(name.as_str()) {
                    continue;
                }
                if !used.contains(name.as_str()) && reported.insert(name.clone()) {
                    self.current = self.spans.and_then(|t| t.stmts.get(facts.index)).copied();
                    self.warning(
                        "PPL010",
                        format!("variable `{name}` is assigned but never read"),
                    );
                }
            }
        }
        self.current = None;
    }

    /// Flags observations whose success probability is statically 0
    /// (every execution rejected) or 1 (the observation is a no-op).
    fn check_observe_determinism(&mut self, rand: &RandExpr, expr: &Expr) {
        let Some(observed) = const_value(expr) else {
            return;
        };
        match &rand.kind {
            RandKind::Flip(p) => {
                let Some(p) = const_value(p).and_then(|v| v.as_real().ok()) else {
                    return;
                };
                // Only 0/1-like observed values have a clear coercion.
                let want = match observed {
                    Value::Bool(b) => b,
                    Value::Int(0) => false,
                    Value::Int(1) => true,
                    _ => return,
                };
                let prob = if want { p } else { 1.0 - p };
                if prob == 0.0 {
                    self.error(
                        "PPL013",
                        format!(
                            "observation at site `{}` is statically impossible \
                             (probability 0); every execution would be rejected",
                            rand.site
                        ),
                    );
                } else if prob == 1.0 {
                    self.warning(
                        "PPL012",
                        format!(
                            "observation at site `{}` is statically certain \
                             (probability 1); it never constrains the posterior",
                            rand.site
                        ),
                    );
                }
            }
            RandKind::UniformInt(lo, hi) => {
                let (Some(lo), Some(hi)) = (
                    const_value(lo).and_then(|v| v.as_int().ok()),
                    const_value(hi).and_then(|v| v.as_int().ok()),
                ) else {
                    return;
                };
                let Value::Int(k) = observed else {
                    return;
                };
                if k < lo || k > hi {
                    self.error(
                        "PPL013",
                        format!(
                            "observation at site `{}` is statically impossible: \
                             {k} is outside uniform({lo}, {hi})",
                            rand.site
                        ),
                    );
                } else if lo == hi {
                    self.warning(
                        "PPL012",
                        format!(
                            "observation at site `{}` is statically certain \
                             (probability 1); it never constrains the posterior",
                            rand.site
                        ),
                    );
                }
            }
            _ => {}
        }
    }

    fn check_block(
        &mut self,
        block: &Block,
        env: &mut Env,
        path_sites: &mut HashSet<String>,
        loop_depth: usize,
    ) {
        for stmt in block.stmts() {
            self.check_stmt(stmt, env, path_sites, loop_depth);
        }
    }

    fn check_stmt(
        &mut self,
        stmt: &Stmt,
        env: &mut Env,
        path_sites: &mut HashSet<String>,
        loop_depth: usize,
    ) {
        // Statements are visited in the parser's pre-order, so the span
        // table lines up index-for-index.
        self.current = self
            .spans
            .and_then(|t| t.stmts.get(self.next_index))
            .copied();
        self.next_index += 1;
        let span_here = self.current;
        match stmt {
            Stmt::Skip => {}
            Stmt::Assign(name, expr) => {
                let ty = self.check_expr(expr, env, path_sites, loop_depth);
                env.define(name, ty);
            }
            Stmt::AssignIndex(name, idx, expr) => {
                let idx_ty = self.check_expr(idx, env, path_sites, loop_depth);
                if idx_ty == AbsType::Array {
                    self.error(
                        "PPL004",
                        format!("index expression for `{name}` is an array"),
                    );
                }
                self.check_expr(expr, env, path_sites, loop_depth);
                match env.vars.get(name) {
                    None => self.error(
                        "PPL004",
                        format!("element assignment to `{name}` before the array is defined"),
                    ),
                    Some((Defined::Maybe, _)) => self.warning(
                        "PPL005",
                        format!("element assignment to `{name}`, which may be undefined here"),
                    ),
                    Some((Defined::Definitely, AbsType::Number)) => self.error(
                        "PPL004",
                        format!("`{name}` is a number but is indexed like an array"),
                    ),
                    _ => {}
                }
            }
            Stmt::Observe(rand, expr) => {
                self.check_rand(rand, env, path_sites, loop_depth);
                self.check_expr(expr, env, path_sites, loop_depth);
                self.check_observe_determinism(rand, expr);
            }
            Stmt::If(cond, then_b, else_b) => {
                let cond_ty = self.check_expr(cond, env, path_sites, loop_depth);
                if cond_ty == AbsType::Array {
                    self.error("PPL004", "`if` condition is an array".to_string());
                }
                if let Some(truthy) = const_value(cond).and_then(|v| v.truthy().ok()) {
                    let dead = if truthy { "else" } else { "then" };
                    let dead_empty = if truthy {
                        else_b.stmts().is_empty()
                    } else {
                        then_b.stmts().is_empty()
                    };
                    if !dead_empty {
                        self.warning(
                            "PPL011",
                            format!(
                                "`{dead}` branch is statically unreachable: the condition \
                                 is constantly {truthy}"
                            ),
                        );
                    }
                }
                // Branches see independent site paths (they never both
                // execute).
                let mut then_env = env.clone();
                let mut then_sites = path_sites.clone();
                self.check_block(then_b, &mut then_env, &mut then_sites, loop_depth);
                let mut else_env = env.clone();
                let mut else_sites = path_sites.clone();
                self.check_block(else_b, &mut else_env, &mut else_sites, loop_depth);
                *env = then_env.join(else_env);
                // Sites used in either branch are used on *some* path.
                path_sites.extend(then_sites);
                path_sites.extend(else_sites);
            }
            Stmt::While(cond, body) => {
                // Condition checked in the pre-loop environment; the body
                // may run zero times, so its definitions are only Maybe.
                self.check_expr(cond, env, path_sites, loop_depth);
                if const_value(cond).and_then(|v| v.truthy().ok()) == Some(false)
                    && !body.stmts().is_empty()
                {
                    self.current = span_here;
                    self.warning(
                        "PPL011",
                        "`while` body is statically unreachable: the condition is \
                         constantly false"
                            .to_string(),
                    );
                }
                let mut body_env = env.clone();
                let mut body_sites = HashSet::new();
                self.check_block(body, &mut body_env, &mut body_sites, loop_depth + 1);
                *env = env.clone().join(body_env);
            }
            Stmt::For(var, lo, hi, body) => {
                let lo_ty = self.check_expr(lo, env, path_sites, loop_depth);
                let hi_ty = self.check_expr(hi, env, path_sites, loop_depth);
                if lo_ty == AbsType::Array || hi_ty == AbsType::Array {
                    self.error("PPL004", format!("loop bounds of `for {var}` are arrays"));
                }
                let mut body_env = env.clone();
                body_env.define(var, AbsType::Number);
                // Loop iterations get distinct loop indices in their
                // addresses, so the body starts a fresh site path.
                let mut body_sites = HashSet::new();
                self.check_block(body, &mut body_env, &mut body_sites, loop_depth + 1);
                // The body may run zero times: join with the pre-state.
                *env = env.clone().join(body_env);
            }
        }
    }

    fn check_rand(
        &mut self,
        rand: &RandExpr,
        env: &Env,
        path_sites: &mut HashSet<String>,
        loop_depth: usize,
    ) {
        // A site executed twice on the same path at the same loop depth
        // collides at runtime.
        if !path_sites.insert(rand.site.as_str().to_string()) {
            self.error(
                "PPL003",
                format!(
                    "site `{}` is used by more than one random expression on the same \
                     execution path; the addresses would collide",
                    rand.site
                ),
            );
        }
        let mut check_param = |e: &Expr, what: &str| {
            let ty = self.check_expr_inner(e, env, path_sites, loop_depth);
            if ty == AbsType::Array {
                self.error(
                    "PPL004",
                    format!(
                        "{what} of `{}` at site `{}` is an array",
                        rand.kind.family(),
                        rand.site
                    ),
                );
            }
        };
        match &rand.kind {
            RandKind::Flip(p)
            | RandKind::Poisson(p)
            | RandKind::GeometricDist(p)
            | RandKind::Exponential(p) => check_param(p, "parameter"),
            RandKind::UniformInt(a, b)
            | RandKind::UniformReal(a, b)
            | RandKind::Gauss(a, b)
            | RandKind::Beta(a, b) => {
                check_param(a, "first parameter");
                check_param(b, "second parameter");
            }
            RandKind::Categorical(ws) => {
                for w in ws {
                    check_param(w, "weight");
                }
            }
        }
    }

    fn check_expr(
        &mut self,
        expr: &Expr,
        env: &Env,
        path_sites: &mut HashSet<String>,
        loop_depth: usize,
    ) -> AbsType {
        self.check_expr_inner(expr, env, path_sites, loop_depth)
    }

    fn check_expr_inner(
        &mut self,
        expr: &Expr,
        env: &Env,
        path_sites: &mut HashSet<String>,
        loop_depth: usize,
    ) -> AbsType {
        match expr {
            Expr::Const(v) => match v {
                crate::Value::Array(_) => AbsType::Array,
                _ => AbsType::Number,
            },
            Expr::Var(name) => match env.vars.get(name) {
                None => {
                    self.error(
                        "PPL001",
                        format!("variable `{name}` is used before being defined"),
                    );
                    AbsType::Unknown
                }
                Some((Defined::Maybe, ty)) => {
                    self.warning(
                        "PPL002",
                        format!(
                            "variable `{name}` may be undefined here (it is not assigned on \
                             every path)"
                        ),
                    );
                    *ty
                }
                Some((Defined::Definitely, ty)) => *ty,
            },
            Expr::Unary(_, e) => {
                let ty = self.check_expr_inner(e, env, path_sites, loop_depth);
                if ty == AbsType::Array {
                    self.error("PPL004", "unary operator applied to an array".to_string());
                }
                AbsType::Number
            }
            Expr::Binary(op, a, b) => {
                let ta = self.check_expr_inner(a, env, path_sites, loop_depth);
                let tb = self.check_expr_inner(b, env, path_sites, loop_depth);
                use crate::ast::BinOp::*;
                // `==`/`!=` compare arrays fine; everything else needs
                // numbers.
                if !matches!(op, Eq | Ne) && (ta == AbsType::Array || tb == AbsType::Array) {
                    self.error(
                        "PPL004",
                        format!("binary operator `{op:?}` applied to an array operand"),
                    );
                }
                AbsType::Number
            }
            Expr::Index(arr, idx) => {
                let ta = self.check_expr_inner(arr, env, path_sites, loop_depth);
                if ta == AbsType::Number {
                    self.error("PPL004", "indexing into a number".to_string());
                }
                let ti = self.check_expr_inner(idx, env, path_sites, loop_depth);
                if ti == AbsType::Array {
                    self.error("PPL004", "array used as an index".to_string());
                }
                AbsType::Unknown
            }
            Expr::ArrayInit(n, init) => {
                let tn = self.check_expr_inner(n, env, path_sites, loop_depth);
                if tn == AbsType::Array {
                    self.error("PPL004", "array length is an array".to_string());
                }
                self.check_expr_inner(init, env, path_sites, loop_depth);
                AbsType::Array
            }
            Expr::Call(builtin, args) => {
                for a in args {
                    self.check_expr_inner(a, env, path_sites, loop_depth);
                }
                match builtin {
                    crate::ast::Builtin::Len => AbsType::Number,
                    _ => AbsType::Number,
                }
            }
            Expr::Ternary(c, t, e) => {
                let tc = self.check_expr_inner(c, env, path_sites, loop_depth);
                if tc == AbsType::Array {
                    self.error("PPL004", "ternary condition is an array".to_string());
                }
                let tt = self.check_expr_inner(t, env, path_sites, loop_depth);
                let te = self.check_expr_inner(e, env, path_sites, loop_depth);
                tt.join(te)
            }
            Expr::Random(rand) => {
                self.check_rand(rand, env, path_sites, loop_depth);
                AbsType::Number
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use crate::parser::parse_with_spans;

    fn errors(src: &str) -> Vec<String> {
        check(&parse(src).unwrap())
            .into_iter()
            .filter(|d| d.severity == Severity::Error)
            .map(|d| d.message)
            .collect()
    }

    fn warnings(src: &str) -> Vec<String> {
        check(&parse(src).unwrap())
            .into_iter()
            .filter(|d| d.severity == Severity::Warning)
            .map(|d| d.message)
            .collect()
    }

    fn codes(src: &str) -> Vec<&'static str> {
        check(&parse(src).unwrap())
            .into_iter()
            .map(|d| d.code)
            .collect()
    }

    #[test]
    fn clean_programs_have_no_diagnostics() {
        for src in [
            "x = flip(0.5); return x;",
            "a = 1; b = a + 2; if a < b { c = 1; } else { c = 2; } return c;",
            "xs = array(3, 0); for i in [0..3) { xs[i] = gauss(0.0, 1.0); } return xs;",
            "observe(flip(0.5) == 1);",
        ] {
            let diagnostics = check(&parse(src).unwrap());
            assert!(diagnostics.is_empty(), "{src}: {diagnostics:?}");
        }
    }

    #[test]
    fn unbound_variable_is_an_error() {
        let errs = errors("x = ghost + 1; return x;");
        assert!(errs.iter().any(|m| m.contains("`ghost`")), "{errs:?}");
        assert!(codes("x = ghost + 1; return x;").contains(&"PPL001"));
    }

    #[test]
    fn branch_only_definition_is_a_warning() {
        let warns = warnings("a = flip(0.5); if a { y = 1; } x = y + 1; return x;");
        assert!(warns.iter().any(|m| m.contains("`y`")), "{warns:?}");
        // Defined in both branches: clean.
        assert!(
            warnings("a = flip(0.5); if a { y = 1; } else { y = 2; } x = y + 1; return x;")
                .is_empty()
        );
    }

    #[test]
    fn loop_body_definition_is_maybe() {
        let warns = warnings("for i in [0..3) { y = i; } x = y; return x;");
        assert!(warns.iter().any(|m| m.contains("`y`")), "{warns:?}");
    }

    #[test]
    fn duplicate_site_on_one_path_is_an_error() {
        let errs = errors("x = flip(0.5) @ s; y = flip(0.5) @ s; return x;");
        assert!(errs.iter().any(|m| m.contains("`s`")), "{errs:?}");
        // Different branches: fine.
        assert!(errors(
            "a = flip(0.5); if a { x = flip(0.5) @ s; } else { x = flip(0.3) @ s; } return x;"
        )
        .is_empty());
        // Inside a loop: loop indices disambiguate — fine.
        assert!(errors("for i in [0..3) { x = flip(0.5) @ s; } return 0;").is_empty());
    }

    #[test]
    fn array_type_errors() {
        let errs = errors("a = array(3, 0); x = a + 1; return x;");
        assert!(errs.iter().any(|m| m.contains("array operand")), "{errs:?}");
        let errs = errors("n = 3; x = n[0]; return x;");
        assert!(
            errs.iter().any(|m| m.contains("indexing into a number")),
            "{errs:?}"
        );
        let errs = errors("a = array(2, 0); x = flip(a); return x;");
        assert!(errs.iter().any(|m| m.contains("parameter")), "{errs:?}");
        let errs = errors("n = 1; n[0] = 2; return n;");
        assert!(
            errs.iter().any(|m| m.contains("indexed like an array")),
            "{errs:?}"
        );
    }

    #[test]
    fn element_assignment_before_definition() {
        let errs = errors("xs[0] = 1; return 0;");
        assert!(
            errs.iter()
                .any(|m| m.contains("before the array is defined")),
            "{errs:?}"
        );
    }

    #[test]
    fn is_clean_matches_error_presence() {
        assert!(is_clean(&parse("x = 1; return x;").unwrap()));
        assert!(!is_clean(&parse("x = ghost; return x;").unwrap()));
    }

    #[test]
    fn evaluation_programs_are_clean() {
        assert!(check(&models_src_burglary()).is_empty());
        fn models_src_burglary() -> crate::ast::Program {
            parse(
                "burglary = flip(0.02) @ alpha;
                 pAlarm = burglary ? 0.9 : 0.01;
                 alarm = flip(pAlarm) @ beta;
                 if alarm { pMaryWakes = 0.8; } else { pMaryWakes = 0.05; }
                 observe(flip(pMaryWakes) == 1) @ o;
                 return burglary;",
            )
            .unwrap()
        }
    }

    #[test]
    fn while_loops_check() {
        let warns = warnings("n = 0; while n < 3 { n = n + 1; m = n; } x = m; return x;");
        assert!(warns.iter().any(|m| m.contains("`m`")), "{warns:?}");
        let errs = errors("while ghost { skip; }");
        assert!(errs.iter().any(|m| m.contains("`ghost`")), "{errs:?}");
    }

    #[test]
    fn unused_variable_is_ppl010() {
        let src = "x = flip(0.5); dead = 7; return x;";
        assert!(
            codes(src).contains(&"PPL010"),
            "{:?}",
            check(&parse(src).unwrap())
        );
        // Loop variables are exempt.
        assert!(
            !codes("for i in [0..3) { x = flip(0.5); observe(flip(0.5) == x); } return 0;")
                .contains(&"PPL010")
        );
    }

    #[test]
    fn unreachable_branches_are_ppl011() {
        let src = "if 1 < 2 { x = 1; } else { x = 2; } return x;";
        assert!(codes(src).contains(&"PPL011"));
        let src = "if false { x = 1; } else { x = 2; } return x;";
        assert!(codes(src).contains(&"PPL011"));
        let src = "while false { skip; } return 0;";
        assert!(codes(src).contains(&"PPL011"));
        // An always-true condition with an *empty* else is fine.
        assert!(!codes("x = 0; if true { x = 1; } return x;").contains(&"PPL011"));
    }

    #[test]
    fn deterministic_observes_are_flagged() {
        // Probability 0: error.
        let src = "observe(flip(0.0) == 1);";
        let d = check(&parse(src).unwrap());
        assert!(
            d.iter()
                .any(|x| x.code == "PPL013" && x.severity == Severity::Error),
            "{d:?}"
        );
        let src = "observe(uniform(0, 3) == 7);";
        assert!(codes(src).contains(&"PPL013"));
        // Probability 1: warning.
        let src = "observe(flip(1.0) == 1);";
        let d = check(&parse(src).unwrap());
        assert!(
            d.iter()
                .any(|x| x.code == "PPL012" && x.severity == Severity::Warning),
            "{d:?}"
        );
        // Non-constant parameters or values are never flagged.
        assert!(
            !codes("p = flip(0.5); observe(flip(p ? 0.0 : 1.0) == 1); return p;")
                .iter()
                .any(|c| *c == "PPL012" || *c == "PPL013")
        );
    }

    #[test]
    fn spans_point_at_the_offending_statement() {
        let (p, spans) =
            parse_with_spans("x = 1;\ny = ghost;\nif false { z = 2; }\nreturn x;").unwrap();
        let diags = check_with_spans(&p, Some(&spans));
        let ghost = diags.iter().find(|d| d.code == "PPL001").unwrap();
        assert_eq!(ghost.span.unwrap().line, 2);
        let dead = diags.iter().find(|d| d.code == "PPL011").unwrap();
        assert_eq!(dead.span.unwrap().line, 3);
        let rendered = ghost.to_string();
        assert!(rendered.starts_with("2:1: error[PPL001]"), "{rendered}");
    }

    #[test]
    fn spanless_check_still_renders_codes() {
        let d = &check(&parse("x = ghost; return x;").unwrap())[0];
        assert_eq!(d.to_string(), format!("error[PPL001]: {}", d.message));
    }
}
