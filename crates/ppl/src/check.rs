//! Static checks for surface-language programs.
//!
//! Catches before execution the mistakes that would otherwise surface as
//! runtime [`crate::PplError`]s mid-inference:
//!
//! - **use of possibly-undefined variables** (path-sensitive: a variable
//!   assigned in only one branch of an `if`, or only inside a loop body,
//!   is not definitely defined afterwards);
//! - **duplicate site labels** that would collide at runtime (two random
//!   expressions with the same label on one execution path at the same
//!   loop depth);
//! - **obvious type errors** (an array used where a number is needed, a
//!   number indexed like an array) via a simple abstract interpretation.

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::ast::{Block, Expr, Program, RandExpr, RandKind, Stmt};

/// Severity of a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Will (or is very likely to) fail at runtime.
    Error,
    /// Suspicious but possibly intentional.
    Warning,
}

/// One finding of the checker.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// How severe the finding is.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.severity {
            Severity::Error => write!(f, "error: {}", self.message),
            Severity::Warning => write!(f, "warning: {}", self.message),
        }
    }
}

/// A coarse abstract type for the flow analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AbsType {
    Number,
    Array,
    Unknown,
}

impl AbsType {
    fn join(self, other: AbsType) -> AbsType {
        if self == other {
            self
        } else {
            AbsType::Unknown
        }
    }
}

/// Definedness of a variable at a program point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Defined {
    Definitely,
    Maybe,
}

#[derive(Debug, Clone, Default)]
struct Env {
    vars: HashMap<String, (Defined, AbsType)>,
}

impl Env {
    fn define(&mut self, name: &str, ty: AbsType) {
        self.vars
            .insert(name.to_string(), (Defined::Definitely, ty));
    }

    /// Merge of two branch outcomes: defined only if defined in both.
    fn join(mut self, other: Env) -> Env {
        let mut merged = HashMap::new();
        for (name, (d1, t1)) in self.vars.drain() {
            match other.vars.get(&name) {
                Some((d2, t2)) => {
                    let d = if d1 == Defined::Definitely && *d2 == Defined::Definitely {
                        Defined::Definitely
                    } else {
                        Defined::Maybe
                    };
                    merged.insert(name, (d, t1.join(*t2)));
                }
                None => {
                    merged.insert(name, (Defined::Maybe, t1));
                }
            }
        }
        for (name, (_, t)) in other.vars {
            merged.entry(name).or_insert((Defined::Maybe, t));
        }
        Env { vars: merged }
    }
}

struct Checker {
    diagnostics: Vec<Diagnostic>,
}

/// Checks `program`, returning all diagnostics (errors first).
pub fn check(program: &Program) -> Vec<Diagnostic> {
    let mut checker = Checker {
        diagnostics: Vec::new(),
    };
    let mut env = Env::default();
    let mut path_sites = HashSet::new();
    checker.check_block(&program.body, &mut env, &mut path_sites, 0);
    if let Some(ret) = &program.ret {
        checker.check_expr(ret, &env, &mut path_sites, 0);
    }
    checker
        .diagnostics
        .sort_by_key(|d| (d.severity != Severity::Error, d.message.clone()));
    checker.diagnostics.dedup();
    checker.diagnostics
}

/// Convenience: parse-and-check error count is zero.
pub fn is_clean(program: &Program) -> bool {
    check(program).iter().all(|d| d.severity != Severity::Error)
}

impl Checker {
    fn error(&mut self, message: String) {
        self.diagnostics.push(Diagnostic {
            severity: Severity::Error,
            message,
        });
    }

    fn warning(&mut self, message: String) {
        self.diagnostics.push(Diagnostic {
            severity: Severity::Warning,
            message,
        });
    }

    fn check_block(
        &mut self,
        block: &Block,
        env: &mut Env,
        path_sites: &mut HashSet<String>,
        loop_depth: usize,
    ) {
        for stmt in block.stmts() {
            self.check_stmt(stmt, env, path_sites, loop_depth);
        }
    }

    fn check_stmt(
        &mut self,
        stmt: &Stmt,
        env: &mut Env,
        path_sites: &mut HashSet<String>,
        loop_depth: usize,
    ) {
        match stmt {
            Stmt::Skip => {}
            Stmt::Assign(name, expr) => {
                let ty = self.check_expr(expr, env, path_sites, loop_depth);
                env.define(name, ty);
            }
            Stmt::AssignIndex(name, idx, expr) => {
                let idx_ty = self.check_expr(idx, env, path_sites, loop_depth);
                if idx_ty == AbsType::Array {
                    self.error(format!("index expression for `{name}` is an array"));
                }
                self.check_expr(expr, env, path_sites, loop_depth);
                match env.vars.get(name) {
                    None => self.error(format!(
                        "element assignment to `{name}` before the array is defined"
                    )),
                    Some((Defined::Maybe, _)) => self.warning(format!(
                        "element assignment to `{name}`, which may be undefined here"
                    )),
                    Some((Defined::Definitely, AbsType::Number)) => {
                        self.error(format!("`{name}` is a number but is indexed like an array"))
                    }
                    _ => {}
                }
            }
            Stmt::Observe(rand, expr) => {
                self.check_rand(rand, env, path_sites, loop_depth);
                self.check_expr(expr, env, path_sites, loop_depth);
            }
            Stmt::If(cond, then_b, else_b) => {
                let cond_ty = self.check_expr(cond, env, path_sites, loop_depth);
                if cond_ty == AbsType::Array {
                    self.error("`if` condition is an array".to_string());
                }
                // Branches see independent site paths (they never both
                // execute).
                let mut then_env = env.clone();
                let mut then_sites = path_sites.clone();
                self.check_block(then_b, &mut then_env, &mut then_sites, loop_depth);
                let mut else_env = env.clone();
                let mut else_sites = path_sites.clone();
                self.check_block(else_b, &mut else_env, &mut else_sites, loop_depth);
                *env = then_env.join(else_env);
                // Sites used in either branch are used on *some* path.
                path_sites.extend(then_sites);
                path_sites.extend(else_sites);
            }
            Stmt::While(cond, body) => {
                // Condition checked in the pre-loop environment; the body
                // may run zero times, so its definitions are only Maybe.
                self.check_expr(cond, env, path_sites, loop_depth);
                let mut body_env = env.clone();
                let mut body_sites = HashSet::new();
                self.check_block(body, &mut body_env, &mut body_sites, loop_depth + 1);
                *env = env.clone().join(body_env);
            }
            Stmt::For(var, lo, hi, body) => {
                let lo_ty = self.check_expr(lo, env, path_sites, loop_depth);
                let hi_ty = self.check_expr(hi, env, path_sites, loop_depth);
                if lo_ty == AbsType::Array || hi_ty == AbsType::Array {
                    self.error(format!("loop bounds of `for {var}` are arrays"));
                }
                let mut body_env = env.clone();
                body_env.define(var, AbsType::Number);
                // Loop iterations get distinct loop indices in their
                // addresses, so the body starts a fresh site path.
                let mut body_sites = HashSet::new();
                self.check_block(body, &mut body_env, &mut body_sites, loop_depth + 1);
                // The body may run zero times: join with the pre-state.
                *env = env.clone().join(body_env);
            }
        }
    }

    fn check_rand(
        &mut self,
        rand: &RandExpr,
        env: &Env,
        path_sites: &mut HashSet<String>,
        loop_depth: usize,
    ) {
        // A site executed twice on the same path at the same loop depth
        // collides at runtime.
        if !path_sites.insert(rand.site.as_str().to_string()) {
            self.error(format!(
                "site `{}` is used by more than one random expression on the same \
                 execution path; the addresses would collide",
                rand.site
            ));
        }
        let mut check_param = |e: &Expr, what: &str| {
            let ty = self.check_expr_inner(e, env, path_sites, loop_depth);
            if ty == AbsType::Array {
                self.error(format!(
                    "{what} of `{}` at site `{}` is an array",
                    rand.kind.family(),
                    rand.site
                ));
            }
        };
        match &rand.kind {
            RandKind::Flip(p)
            | RandKind::Poisson(p)
            | RandKind::GeometricDist(p)
            | RandKind::Exponential(p) => check_param(p, "parameter"),
            RandKind::UniformInt(a, b)
            | RandKind::UniformReal(a, b)
            | RandKind::Gauss(a, b)
            | RandKind::Beta(a, b) => {
                check_param(a, "first parameter");
                check_param(b, "second parameter");
            }
            RandKind::Categorical(ws) => {
                for w in ws {
                    check_param(w, "weight");
                }
            }
        }
    }

    fn check_expr(
        &mut self,
        expr: &Expr,
        env: &Env,
        path_sites: &mut HashSet<String>,
        loop_depth: usize,
    ) -> AbsType {
        self.check_expr_inner(expr, env, path_sites, loop_depth)
    }

    fn check_expr_inner(
        &mut self,
        expr: &Expr,
        env: &Env,
        path_sites: &mut HashSet<String>,
        loop_depth: usize,
    ) -> AbsType {
        match expr {
            Expr::Const(v) => match v {
                crate::Value::Array(_) => AbsType::Array,
                _ => AbsType::Number,
            },
            Expr::Var(name) => match env.vars.get(name) {
                None => {
                    self.error(format!("variable `{name}` is used before being defined"));
                    AbsType::Unknown
                }
                Some((Defined::Maybe, ty)) => {
                    self.warning(format!(
                        "variable `{name}` may be undefined here (it is not assigned on \
                         every path)"
                    ));
                    *ty
                }
                Some((Defined::Definitely, ty)) => *ty,
            },
            Expr::Unary(_, e) => {
                let ty = self.check_expr_inner(e, env, path_sites, loop_depth);
                if ty == AbsType::Array {
                    self.error("unary operator applied to an array".to_string());
                }
                AbsType::Number
            }
            Expr::Binary(op, a, b) => {
                let ta = self.check_expr_inner(a, env, path_sites, loop_depth);
                let tb = self.check_expr_inner(b, env, path_sites, loop_depth);
                use crate::ast::BinOp::*;
                // `==`/`!=` compare arrays fine; everything else needs
                // numbers.
                if !matches!(op, Eq | Ne) && (ta == AbsType::Array || tb == AbsType::Array) {
                    self.error(format!(
                        "binary operator `{op:?}` applied to an array operand"
                    ));
                }
                AbsType::Number
            }
            Expr::Index(arr, idx) => {
                let ta = self.check_expr_inner(arr, env, path_sites, loop_depth);
                if ta == AbsType::Number {
                    self.error("indexing into a number".to_string());
                }
                let ti = self.check_expr_inner(idx, env, path_sites, loop_depth);
                if ti == AbsType::Array {
                    self.error("array used as an index".to_string());
                }
                AbsType::Unknown
            }
            Expr::ArrayInit(n, init) => {
                let tn = self.check_expr_inner(n, env, path_sites, loop_depth);
                if tn == AbsType::Array {
                    self.error("array length is an array".to_string());
                }
                self.check_expr_inner(init, env, path_sites, loop_depth);
                AbsType::Array
            }
            Expr::Call(builtin, args) => {
                for a in args {
                    self.check_expr_inner(a, env, path_sites, loop_depth);
                }
                match builtin {
                    crate::ast::Builtin::Len => AbsType::Number,
                    _ => AbsType::Number,
                }
            }
            Expr::Ternary(c, t, e) => {
                let tc = self.check_expr_inner(c, env, path_sites, loop_depth);
                if tc == AbsType::Array {
                    self.error("ternary condition is an array".to_string());
                }
                let tt = self.check_expr_inner(t, env, path_sites, loop_depth);
                let te = self.check_expr_inner(e, env, path_sites, loop_depth);
                tt.join(te)
            }
            Expr::Random(rand) => {
                self.check_rand(rand, env, path_sites, loop_depth);
                AbsType::Number
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn errors(src: &str) -> Vec<String> {
        check(&parse(src).unwrap())
            .into_iter()
            .filter(|d| d.severity == Severity::Error)
            .map(|d| d.message)
            .collect()
    }

    fn warnings(src: &str) -> Vec<String> {
        check(&parse(src).unwrap())
            .into_iter()
            .filter(|d| d.severity == Severity::Warning)
            .map(|d| d.message)
            .collect()
    }

    #[test]
    fn clean_programs_have_no_diagnostics() {
        for src in [
            "x = flip(0.5); return x;",
            "a = 1; b = a + 2; if a < b { c = 1; } else { c = 2; } return c;",
            "xs = array(3, 0); for i in [0..3) { xs[i] = gauss(0.0, 1.0); } return xs;",
            "observe(flip(0.5) == 1);",
        ] {
            let diagnostics = check(&parse(src).unwrap());
            assert!(diagnostics.is_empty(), "{src}: {diagnostics:?}");
        }
    }

    #[test]
    fn unbound_variable_is_an_error() {
        let errs = errors("x = ghost + 1; return x;");
        assert!(errs.iter().any(|m| m.contains("`ghost`")), "{errs:?}");
    }

    #[test]
    fn branch_only_definition_is_a_warning() {
        let warns = warnings("a = flip(0.5); if a { y = 1; } x = y + 1; return x;");
        assert!(warns.iter().any(|m| m.contains("`y`")), "{warns:?}");
        // Defined in both branches: clean.
        assert!(
            warnings("a = flip(0.5); if a { y = 1; } else { y = 2; } x = y + 1; return x;")
                .is_empty()
        );
    }

    #[test]
    fn loop_body_definition_is_maybe() {
        let warns = warnings("for i in [0..3) { y = i; } x = y; return x;");
        assert!(warns.iter().any(|m| m.contains("`y`")), "{warns:?}");
    }

    #[test]
    fn duplicate_site_on_one_path_is_an_error() {
        let errs = errors("x = flip(0.5) @ s; y = flip(0.5) @ s; return x;");
        assert!(errs.iter().any(|m| m.contains("`s`")), "{errs:?}");
        // Different branches: fine.
        assert!(errors(
            "a = flip(0.5); if a { x = flip(0.5) @ s; } else { x = flip(0.3) @ s; } return x;"
        )
        .is_empty());
        // Inside a loop: loop indices disambiguate — fine.
        assert!(errors("for i in [0..3) { x = flip(0.5) @ s; } return 0;").is_empty());
    }

    #[test]
    fn array_type_errors() {
        let errs = errors("a = array(3, 0); x = a + 1; return x;");
        assert!(errs.iter().any(|m| m.contains("array operand")), "{errs:?}");
        let errs = errors("n = 3; x = n[0]; return x;");
        assert!(
            errs.iter().any(|m| m.contains("indexing into a number")),
            "{errs:?}"
        );
        let errs = errors("a = array(2, 0); x = flip(a); return x;");
        assert!(errs.iter().any(|m| m.contains("parameter")), "{errs:?}");
        let errs = errors("n = 1; n[0] = 2; return n;");
        assert!(
            errs.iter().any(|m| m.contains("indexed like an array")),
            "{errs:?}"
        );
    }

    #[test]
    fn element_assignment_before_definition() {
        let errs = errors("xs[0] = 1; return 0;");
        assert!(
            errs.iter()
                .any(|m| m.contains("before the array is defined")),
            "{errs:?}"
        );
    }

    #[test]
    fn is_clean_matches_error_presence() {
        assert!(is_clean(&parse("x = 1; return x;").unwrap()));
        assert!(!is_clean(&parse("x = ghost; return x;").unwrap()));
    }

    #[test]
    fn evaluation_programs_are_clean() {
        assert!(check(&models_src_burglary()).is_empty());
        fn models_src_burglary() -> crate::ast::Program {
            parse(
                "burglary = flip(0.02) @ alpha;
                 pAlarm = burglary ? 0.9 : 0.01;
                 alarm = flip(pAlarm) @ beta;
                 if alarm { pMaryWakes = 0.8; } else { pMaryWakes = 0.05; }
                 observe(flip(pMaryWakes) == 1) @ o;
                 return burglary;",
            )
            .unwrap()
        }
    }

    #[test]
    fn while_loops_check() {
        let warns = warnings("n = 0; while n < 3 { n = n + 1; m = n; } x = m; return x;");
        assert!(warns.iter().any(|m| m.contains("`m`")), "{warns:?}");
        let errs = errors("while ghost { skip; }");
        assert!(errs.iter().any(|m| m.contains("`ghost`")), "{errs:?}");
    }
}
