//! Compiled expression evaluation: register-lowered programs, slot-resolved
//! environments, and reusable eval frames.
//!
//! The tree-walking interpreter ([`crate::interp`]) resolves every variable
//! through a string-keyed hash map and re-discovers constants, arities, and
//! name bindings on every visit. This module lowers a [`Program`] **once**
//! into a flat, register-based form:
//!
//! - all nodes live in contiguous arenas ([`CompiledProgram`]) addressed by
//!   `u32` ids — no per-node boxes, no pointer chasing;
//! - variable references are resolved at compile time to dense frame-slot
//!   indices ([`SlotId`]), so an environment is a plain vector
//!   ([`EvalFrame`]) indexed in O(1);
//! - constant subexpressions are folded (using the *same* operator
//!   implementations the interpreter runs, so results are bit-identical),
//!   with the subtree's fuel cost recorded on the folded node;
//! - builtin arity is checked up front, so the happy path never re-counts
//!   arguments.
//!
//! Evaluation against a compiled program is **bit-identical** to the
//! tree-walk: the node visit order (and hence RNG draw order, `LogWeight`
//! accumulation order, and error surface) mirrors the AST one-to-one, fuel
//! is charged at the same points (folded constants carry the tick count of
//! the subtree they replace, charged where the tree-walk would start
//! charging it — with no observable effect in between, since only
//! successfully-evaluated effect-free subtrees fold), and compiled blocks
//! are index-aligned with their AST blocks so structural consumers (the
//! dependency-graph planner) can address both with the same indices.
//!
//! Frames are pooled per worker thread ([`acquire_frame`]): a particle
//! task takes a warmed frame, evaluates an entire translation with zero
//! per-eval allocation on the happy path, and returns the frame's storage
//! to the pool on drop. Compiled programs are cached globally keyed by
//! program fingerprint ([`compiled_for`]), so a stage compiles once and
//! every particle shares the artifact by `Arc`.

use std::cell::RefCell;
use std::hash::Hasher as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

use crate::address::Address;
use crate::ast::{collect_var_names, BinOp, Block, Builtin, Expr, Program, RandKind, Stmt, UnOp};
use crate::dist::Dist;
use crate::effects::Handler;
use crate::error::PplError;
use crate::fxhash::{FxHashMap, FxHasher};
use crate::intern::intern_name;
use crate::interp::{apply_binary, apply_builtin, apply_unary};
use crate::value::Value;

/// Index of a compiled expression node in [`CompiledProgram`]'s arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExprId(u32);

/// Index of a compiled statement node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CStmtId(u32);

/// Index of a compiled block node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CBlockId(u32);

/// A dense frame-slot index: every variable name in the program (plus any
/// extra names from a paired source program) gets one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotId(u32);

impl SlotId {
    /// The slot's index into an [`EvalFrame`]'s slot vector.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A contiguous run of argument ids in the program's argument arena
/// (builtin calls and categorical weight lists).
#[derive(Debug, Clone, Copy)]
pub struct ArgRange {
    start: u32,
    len: u32,
}

impl ArgRange {
    /// Number of arguments in the range.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the range is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// A lowered expression node.
///
/// Mirrors [`Expr`] one-to-one except that variables carry resolved slots,
/// constants carry the fuel cost of the subtree they fold away, and calls
/// have their arity pre-checked.
#[derive(Debug, Clone)]
pub enum CExpr {
    /// A constant (literal or folded subtree). `ticks` is the number of
    /// `eval` entries the tree-walk would perform for the original
    /// subtree, charged in one step for fuel parity.
    Const {
        /// The value.
        value: Value,
        /// Fuel ticks of the folded subtree (1 for a plain literal).
        ticks: u32,
    },
    /// A variable read, resolved to a frame slot.
    Var {
        /// The resolved slot.
        slot: SlotId,
        /// The interned name (for dependency summaries and errors).
        name: &'static str,
    },
    /// Unary operator application.
    Unary(UnOp, ExprId),
    /// Binary operator application.
    Binary(BinOp, ExprId, ExprId),
    /// Array indexing `a[i]`.
    Index(ExprId, ExprId),
    /// Array construction `[init; n]`.
    ArrayInit(ExprId, ExprId),
    /// A builtin call whose arity was verified at compile time.
    Call {
        /// The builtin.
        builtin: Builtin,
        /// Argument ids (length equals the builtin's arity).
        args: ArgRange,
    },
    /// A builtin call with the wrong number of arguments: evaluation
    /// reproduces the interpreter's arity error without re-counting.
    CallBadArity {
        /// The builtin.
        builtin: Builtin,
        /// The argument count the source program supplied.
        got: usize,
    },
    /// Lazy conditional `c ? t : e`.
    Ternary(ExprId, ExprId, ExprId),
    /// A random expression.
    Random(CRand),
}

/// A lowered random expression: the site label plus the lowered
/// distribution parameters.
#[derive(Debug, Clone)]
pub struct CRand {
    /// The site label (shared with the AST's `Arc<str>`).
    pub site: Arc<str>,
    /// The lowered distribution constructor.
    pub kind: CRandKind,
}

/// Lowered distribution parameter expressions (mirrors [`RandKind`]).
#[derive(Debug, Clone)]
pub enum CRandKind {
    /// Bernoulli.
    Flip(ExprId),
    /// Uniform over an integer range.
    UniformInt(ExprId, ExprId),
    /// Uniform over a real interval.
    UniformReal(ExprId, ExprId),
    /// Gaussian.
    Gauss(ExprId, ExprId),
    /// Categorical over explicit weights.
    Categorical(ArgRange),
    /// Poisson.
    Poisson(ExprId),
    /// Geometric.
    GeometricDist(ExprId),
    /// Beta.
    Beta(ExprId, ExprId),
    /// Exponential.
    Exponential(ExprId),
}

/// A lowered statement node (mirrors [`Stmt`] one-to-one).
#[derive(Debug, Clone)]
pub enum CStmt {
    /// `skip`.
    Skip,
    /// `name = expr`.
    Assign {
        /// Target slot.
        slot: SlotId,
        /// Interned target name.
        name: &'static str,
        /// Right-hand side.
        expr: ExprId,
    },
    /// `name[index] = expr`.
    AssignIndex {
        /// Target slot.
        slot: SlotId,
        /// Interned target name.
        name: &'static str,
        /// Index expression.
        index: ExprId,
        /// Right-hand side.
        expr: ExprId,
    },
    /// `if cond { … } else { … }`.
    If {
        /// Condition.
        cond: ExprId,
        /// Then-block.
        then_b: CBlockId,
        /// Else-block.
        else_b: CBlockId,
    },
    /// `while cond { … }`.
    While {
        /// Condition.
        cond: ExprId,
        /// Body.
        body: CBlockId,
    },
    /// `for name in [lo..hi) { … }`.
    For {
        /// Loop-variable slot.
        slot: SlotId,
        /// Interned loop-variable name.
        name: &'static str,
        /// Lower bound.
        lo: ExprId,
        /// Upper bound.
        hi: ExprId,
        /// Body.
        body: CBlockId,
    },
    /// `observe(rand == value)`.
    Observe {
        /// The observed random expression.
        rand: CRand,
        /// The observed value expression.
        value: ExprId,
    },
}

/// A lowered block: statement ids **index-aligned** with the AST block's
/// statement list, so a position valid in one is valid in the other.
#[derive(Debug, Clone)]
pub struct CBlock {
    /// The block's statements, in source order.
    pub stmts: Vec<CStmtId>,
}

/// A program lowered into flat arenas; see the module docs.
#[derive(Debug)]
pub struct CompiledProgram {
    exprs: Vec<CExpr>,
    stmts: Vec<CStmt>,
    blocks: Vec<CBlock>,
    arg_ids: Vec<ExprId>,
    body: CBlockId,
    ret: Option<ExprId>,
    slots: Vec<&'static str>,
    slot_ids: FxHashMap<&'static str, SlotId>,
}

impl CompiledProgram {
    /// Resolves an expression id.
    pub fn expr(&self, id: ExprId) -> &CExpr {
        &self.exprs[id.0 as usize]
    }

    /// Resolves a statement id.
    pub fn stmt(&self, id: CStmtId) -> &CStmt {
        &self.stmts[id.0 as usize]
    }

    /// Resolves a block id.
    pub fn block(&self, id: CBlockId) -> &CBlock {
        &self.blocks[id.0 as usize]
    }

    /// Resolves an argument range.
    pub fn args(&self, range: ArgRange) -> &[ExprId] {
        &self.arg_ids[range.start as usize..(range.start + range.len) as usize]
    }

    /// The program body's block id.
    pub fn body(&self) -> CBlockId {
        self.body
    }

    /// The compiled return expression, if the program has one.
    pub fn ret(&self) -> Option<ExprId> {
        self.ret
    }

    /// Number of frame slots a frame for this program needs.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Resolves an interned variable name to its slot, if the name is in
    /// this program's slot universe.
    pub fn slot_of(&self, name: &str) -> Option<SlotId> {
        self.slot_ids.get(name).copied()
    }

    /// The interned name of a slot.
    pub fn slot_name(&self, slot: SlotId) -> &'static str {
        self.slots[slot.0 as usize]
    }
}

/// One environment slot of an [`EvalFrame`].
#[derive(Debug, Clone)]
pub struct FrameSlot {
    /// The bound value (meaningless while `bound` is false).
    pub value: Value,
    /// Whether the slot is bound in the current execution.
    pub bound: bool,
    /// Dirtiness for change propagation (ignored by forward execution):
    /// whether the value (possibly) differs from the corresponding old
    /// execution.
    pub dirty: bool,
}

/// Reusable evaluation scratch: the slot vector plus the enclosing-loop
/// index stack. Allocated once per worker (see [`acquire_frame`]) and
/// reused across particles, iterations, and stages — `prepare` resets the
/// bindings without releasing storage.
#[derive(Debug, Default)]
pub struct EvalFrame {
    slots: Vec<FrameSlot>,
    loops: Vec<i64>,
}

impl EvalFrame {
    /// Creates an empty frame (prefer [`acquire_frame`]).
    pub fn new() -> EvalFrame {
        EvalFrame::default()
    }

    /// Resets the frame for a program with `n` slots: every slot unbound
    /// (and dirty, matching the propagation convention that an unknown
    /// variable is conservatively dirty), the loop stack empty. Retains
    /// allocated capacity.
    pub fn prepare(&mut self, n: usize) {
        self.slots.clear();
        self.slots.resize(
            n,
            FrameSlot {
                value: Value::Int(0),
                bound: false,
                dirty: true,
            },
        );
        self.loops.clear();
    }

    /// Binds `slot` to `value` with the given dirtiness.
    pub fn bind(&mut self, slot: SlotId, value: Value, dirty: bool) {
        let s = &mut self.slots[slot.index()];
        s.value = value;
        s.bound = true;
        s.dirty = dirty;
    }

    /// The slot's state, if bound.
    pub fn get(&self, slot: SlotId) -> Option<&FrameSlot> {
        self.slots.get(slot.index()).filter(|s| s.bound)
    }

    /// Mutable access to the slot's state, if bound.
    pub fn get_mut(&mut self, slot: SlotId) -> Option<&mut FrameSlot> {
        self.slots.get_mut(slot.index()).filter(|s| s.bound)
    }

    /// The enclosing-loop index stack (outermost first).
    pub fn loops(&self) -> &[i64] {
        &self.loops
    }

    /// Pushes a loop index (entering an iteration).
    pub fn push_loop(&mut self, i: i64) {
        self.loops.push(i);
    }

    /// Pops the innermost loop index (leaving an iteration).
    pub fn pop_loop(&mut self) {
        self.loops.pop();
    }

    /// Builds the address of a random site under the current loop nesting:
    /// the site label extended with every enclosing loop index.
    pub fn address_for(&self, site: &Arc<str>) -> Address {
        let mut addr = Address::from_components([Arc::clone(site).into()]);
        for &i in &self.loops {
            addr.push(i);
        }
        addr
    }
}

// ---------------------------------------------------------------------------
// Lowering.
// ---------------------------------------------------------------------------

struct Lowerer<'a> {
    exprs: Vec<CExpr>,
    stmts: Vec<CStmt>,
    blocks: Vec<CBlock>,
    arg_ids: Vec<ExprId>,
    slot_ids: &'a FxHashMap<&'static str, SlotId>,
}

/// Lowers `program` into its compiled form; slot universe = the program's
/// own variable names.
pub fn compile(program: &Program) -> CompiledProgram {
    compile_with_extra_names(program, &[])
}

/// [`compile`] with extra slot-table entries: change propagation replays
/// effects recorded under a *source* program `P` into the frame of the
/// target `Q`, so the frame must have a slot for every name of either
/// program.
pub fn compile_with_extra_names(program: &Program, extra: &[&str]) -> CompiledProgram {
    let mut names: Vec<&str> = Vec::new();
    collect_var_names(program, &mut names);
    names.extend_from_slice(extra);
    let mut slots: Vec<&'static str> = Vec::new();
    let mut slot_ids: FxHashMap<&'static str, SlotId> = FxHashMap::default();
    for name in names {
        let name = intern_name(name);
        if !slot_ids.contains_key(name) {
            slot_ids.insert(name, SlotId(slots.len() as u32));
            slots.push(name);
        }
    }
    let mut lw = Lowerer {
        exprs: Vec::new(),
        stmts: Vec::new(),
        blocks: Vec::new(),
        arg_ids: Vec::new(),
        slot_ids: &slot_ids,
    };
    let body = lw.lower_block(&program.body);
    let ret = program.ret.as_ref().map(|e| lw.lower_expr(e));
    CompiledProgram {
        exprs: lw.exprs,
        stmts: lw.stmts,
        blocks: lw.blocks,
        arg_ids: lw.arg_ids,
        body,
        ret,
        slots,
        slot_ids,
    }
}

impl Lowerer<'_> {
    fn push_expr(&mut self, node: CExpr) -> ExprId {
        let id = ExprId(self.exprs.len() as u32);
        self.exprs.push(node);
        id
    }

    fn slot(&self, name: &'static str) -> SlotId {
        *self
            .slot_ids
            .get(name)
            .expect("every program variable has a slot")
    }

    /// The value and folded tick count of an already-lowered node, when it
    /// is a constant.
    fn const_of(&self, id: ExprId) -> Option<(&Value, u32)> {
        match &self.exprs[id.0 as usize] {
            CExpr::Const { value, ticks } => Some((value, *ticks)),
            _ => None,
        }
    }

    fn lower_args(&mut self, args: &[Expr]) -> ArgRange {
        // Lower into a scratch first: nested calls would otherwise
        // interleave their ids into this range.
        let ids: Vec<ExprId> = args.iter().map(|a| self.lower_expr(a)).collect();
        let start = self.arg_ids.len() as u32;
        let len = ids.len() as u32;
        self.arg_ids.extend(ids);
        ArgRange { start, len }
    }

    fn lower_expr(&mut self, expr: &Expr) -> ExprId {
        let node = match expr {
            Expr::Const(v) => CExpr::Const {
                value: v.clone(),
                ticks: 1,
            },
            Expr::Var(name) => {
                let name = intern_name(name);
                CExpr::Var {
                    slot: self.slot(name),
                    name,
                }
            }
            Expr::Unary(op, a) => {
                let a = self.lower_expr(a);
                let folded = self
                    .const_of(a)
                    .and_then(|(v, t)| apply_unary(*op, v).ok().map(|r| (r, t)));
                match folded {
                    Some((value, t)) => CExpr::Const {
                        value,
                        ticks: t.saturating_add(1),
                    },
                    None => CExpr::Unary(*op, a),
                }
            }
            Expr::Binary(op, lhs, rhs) => {
                let a = self.lower_expr(lhs);
                let b = self.lower_expr(rhs);
                let folded = match (self.const_of(a), self.const_of(b)) {
                    (Some((va, ta)), Some((vb, tb))) => {
                        apply_binary(*op, va, vb).ok().map(|r| (r, ta + tb))
                    }
                    _ => None,
                };
                match folded {
                    Some((value, t)) => CExpr::Const {
                        value,
                        ticks: t.saturating_add(1),
                    },
                    None => CExpr::Binary(*op, a, b),
                }
            }
            Expr::Index(arr, idx) => {
                let a = self.lower_expr(arr);
                let i = self.lower_expr(idx);
                let folded = match (self.const_of(a), self.const_of(i)) {
                    (Some((va, ta)), Some((vi, ti))) => fold_index(va, vi).map(|r| (r, ta + ti)),
                    _ => None,
                };
                match folded {
                    Some((value, t)) => CExpr::Const {
                        value,
                        ticks: t.saturating_add(1),
                    },
                    None => CExpr::Index(a, i),
                }
            }
            Expr::ArrayInit(n, init) => {
                let n = self.lower_expr(n);
                let init = self.lower_expr(init);
                let folded = match (self.const_of(n), self.const_of(init)) {
                    (Some((vn, tn)), Some((vi, ti))) => {
                        fold_array_init(vn, vi).map(|r| (r, tn + ti))
                    }
                    _ => None,
                };
                match folded {
                    Some((value, t)) => CExpr::Const {
                        value,
                        ticks: t.saturating_add(1),
                    },
                    None => CExpr::ArrayInit(n, init),
                }
            }
            Expr::Call(builtin, args) => {
                if args.len() != builtin.arity() {
                    // The interpreter raises this error lazily, every time
                    // the node is reached; lowering must not turn it into
                    // a compile failure (the node may be unreachable).
                    CExpr::CallBadArity {
                        builtin: *builtin,
                        got: args.len(),
                    }
                } else {
                    let range = self.lower_args(args);
                    let consts: Option<(Vec<Value>, u32)> = self.args_const(range);
                    let folded = consts
                        .and_then(|(vals, t)| apply_builtin(*builtin, &vals).ok().map(|r| (r, t)));
                    match folded {
                        Some((value, t)) => CExpr::Const {
                            value,
                            ticks: t.saturating_add(1),
                        },
                        None => CExpr::Call {
                            builtin: *builtin,
                            args: range,
                        },
                    }
                }
            }
            Expr::Ternary(c, t, e) => {
                let c_id = self.lower_expr(c);
                let t_id = self.lower_expr(t);
                let e_id = self.lower_expr(e);
                let folded = self.const_of(c_id).and_then(|(vc, tc)| {
                    let cond = vc.truthy().ok()?;
                    let taken = if cond { t_id } else { e_id };
                    self.const_of(taken).map(|(vt, tt)| (vt.clone(), tc + tt))
                });
                match folded {
                    Some((value, t)) => CExpr::Const {
                        value,
                        ticks: t.saturating_add(1),
                    },
                    None => CExpr::Ternary(c_id, t_id, e_id),
                }
            }
            Expr::Random(rand) => CExpr::Random(CRand {
                site: Arc::clone(&rand.site.0),
                kind: self.lower_rand_kind(&rand.kind),
            }),
        };
        self.push_expr(node)
    }

    /// All argument values with their total tick count, when every
    /// argument in the range is constant.
    fn args_const(&self, range: ArgRange) -> Option<(Vec<Value>, u32)> {
        let mut vals = Vec::with_capacity(range.len as usize);
        let mut ticks = 0_u32;
        for id in &self.arg_ids[range.start as usize..(range.start + range.len) as usize] {
            let (v, t) = self.const_of(*id)?;
            vals.push(v.clone());
            ticks += t;
        }
        Some((vals, ticks))
    }

    fn lower_rand_kind(&mut self, kind: &RandKind) -> CRandKind {
        match kind {
            RandKind::Flip(p) => CRandKind::Flip(self.lower_expr(p)),
            RandKind::UniformInt(lo, hi) => {
                CRandKind::UniformInt(self.lower_expr(lo), self.lower_expr(hi))
            }
            RandKind::UniformReal(lo, hi) => {
                CRandKind::UniformReal(self.lower_expr(lo), self.lower_expr(hi))
            }
            RandKind::Gauss(mean, std) => {
                CRandKind::Gauss(self.lower_expr(mean), self.lower_expr(std))
            }
            RandKind::Categorical(ws) => CRandKind::Categorical(self.lower_args(ws)),
            RandKind::Poisson(l) => CRandKind::Poisson(self.lower_expr(l)),
            RandKind::GeometricDist(p) => CRandKind::GeometricDist(self.lower_expr(p)),
            RandKind::Beta(a, b) => CRandKind::Beta(self.lower_expr(a), self.lower_expr(b)),
            RandKind::Exponential(r) => CRandKind::Exponential(self.lower_expr(r)),
        }
    }

    fn lower_block(&mut self, block: &Block) -> CBlockId {
        let stmts: Vec<CStmtId> = block.stmts().iter().map(|s| self.lower_stmt(s)).collect();
        let id = CBlockId(self.blocks.len() as u32);
        self.blocks.push(CBlock { stmts });
        id
    }

    fn lower_stmt(&mut self, stmt: &Stmt) -> CStmtId {
        let node = match stmt {
            Stmt::Skip => CStmt::Skip,
            Stmt::Assign(name, e) => {
                let name = intern_name(name);
                CStmt::Assign {
                    slot: self.slot(name),
                    name,
                    expr: self.lower_expr(e),
                }
            }
            Stmt::AssignIndex(name, idx, e) => {
                let name = intern_name(name);
                CStmt::AssignIndex {
                    slot: self.slot(name),
                    name,
                    index: self.lower_expr(idx),
                    expr: self.lower_expr(e),
                }
            }
            Stmt::If(cond, then_b, else_b) => CStmt::If {
                cond: self.lower_expr(cond),
                then_b: self.lower_block(then_b),
                else_b: self.lower_block(else_b),
            },
            Stmt::While(cond, body) => CStmt::While {
                cond: self.lower_expr(cond),
                body: self.lower_block(body),
            },
            Stmt::For(var, lo, hi, body) => {
                let name = intern_name(var);
                CStmt::For {
                    slot: self.slot(name),
                    name,
                    lo: self.lower_expr(lo),
                    hi: self.lower_expr(hi),
                    body: self.lower_block(body),
                }
            }
            Stmt::Observe(rand, value_expr) => CStmt::Observe {
                rand: CRand {
                    site: Arc::clone(&rand.site.0),
                    kind: self.lower_rand_kind(&rand.kind),
                },
                value: self.lower_expr(value_expr),
            },
        };
        let id = CStmtId(self.stmts.len() as u32);
        self.stmts.push(node);
        id
    }
}

/// Folds `a[i]` when it matches the interpreter's success path.
fn fold_index(a: &Value, i: &Value) -> Option<Value> {
    let i = i.as_int().ok()?;
    let items = a.as_array().ok()?;
    if i < 0 || i as usize >= items.len() {
        return None;
    }
    Some(items[i as usize].clone())
}

/// Cap on compile-time materialization of `[init; n]` literals.
const FOLD_ARRAY_MAX: i64 = 1024;

/// Folds `[init; n]` for small constant `n`. The folded value is shared by
/// `Arc` across evaluations; mutation goes through copy-on-write
/// (`Value::as_array_mut`), so sharing is invisible to the semantics.
fn fold_array_init(n: &Value, init: &Value) -> Option<Value> {
    let n = n.as_int().ok()?;
    if !(0..=FOLD_ARRAY_MAX).contains(&n) {
        return None;
    }
    Some(Value::array(vec![init.clone(); n as usize]))
}

// ---------------------------------------------------------------------------
// Forward execution against a Handler (the compiled twin of crate::interp).
// ---------------------------------------------------------------------------

/// Runs a compiled program against `handler` with the given fuel budget,
/// using `frame` as scratch. Semantics (RNG draws, fuel charging, error
/// surface, return value) are bit-identical to
/// [`Interp::run_tree_walk`](crate::interp::Interp::run_tree_walk).
///
/// # Errors
///
/// Propagates evaluation and handler errors exactly as the tree-walk does.
pub fn run_compiled(
    prog: &CompiledProgram,
    frame: &mut EvalFrame,
    fuel: u64,
    handler: &mut dyn Handler,
) -> Result<Value, PplError> {
    telemetry().compiled_execs.fetch_add(1, Ordering::Relaxed);
    frame.prepare(prog.slot_count());
    let mut run = Run {
        prog,
        frame,
        fuel,
        budget: fuel,
    };
    run.exec_block(prog.body(), handler)?;
    match prog.ret() {
        Some(e) => run.eval(e, handler),
        None => Ok(Value::Int(0)),
    }
}

struct Run<'a> {
    prog: &'a CompiledProgram,
    frame: &'a mut EvalFrame,
    fuel: u64,
    budget: u64,
}

impl Run<'_> {
    /// Charges `n` fuel ticks; `n > 1` only for folded constants, whose
    /// original subtrees tick consecutively with no observable effect in
    /// between.
    fn charge(&mut self, n: u64) -> Result<(), PplError> {
        if self.fuel < n {
            return Err(PplError::FuelExhausted {
                budget: self.budget,
            });
        }
        self.fuel -= n;
        Ok(())
    }

    fn eval(&mut self, id: ExprId, handler: &mut dyn Handler) -> Result<Value, PplError> {
        match self.prog.expr(id) {
            CExpr::Const { value, ticks } => {
                self.charge(u64::from(*ticks))?;
                Ok(value.clone())
            }
            CExpr::Var { slot, name } => {
                self.charge(1)?;
                self.frame
                    .get(*slot)
                    .map(|s| s.value.clone())
                    .ok_or_else(|| PplError::UnboundVariable((*name).to_string()))
            }
            CExpr::Unary(op, e) => {
                self.charge(1)?;
                let v = self.eval(*e, handler)?;
                apply_unary(*op, &v)
            }
            CExpr::Binary(op, lhs, rhs) => {
                self.charge(1)?;
                let (lhs, rhs) = (*lhs, *rhs);
                let a = self.eval(lhs, handler)?;
                let b = self.eval(rhs, handler)?;
                apply_binary(*op, &a, &b)
            }
            CExpr::Index(arr, idx) => {
                self.charge(1)?;
                let (arr, idx) = (*arr, *idx);
                let a = self.eval(arr, handler)?;
                let i = self.eval(idx, handler)?.as_int()?;
                let items = a.as_array()?;
                if i < 0 || i as usize >= items.len() {
                    return Err(PplError::IndexOutOfBounds {
                        index: i,
                        len: items.len(),
                    });
                }
                Ok(items[i as usize].clone())
            }
            CExpr::ArrayInit(n, init) => {
                self.charge(1)?;
                let (n, init) = (*n, *init);
                let n = self.eval(n, handler)?.as_int()?;
                if n < 0 {
                    return Err(PplError::Other(format!("array length is negative: {n}")));
                }
                let init = self.eval(init, handler)?;
                Ok(Value::array(vec![init; n as usize]))
            }
            CExpr::Call { builtin, args } => {
                self.charge(1)?;
                let (builtin, args) = (*builtin, *args);
                // Arity was verified at compile time and is at most 2:
                // evaluate into fixed scratch, no per-eval allocation.
                let mut vals: [Value; 2] = [Value::Int(0), Value::Int(0)];
                let n = args.len as usize;
                for (k, val) in vals.iter_mut().enumerate().take(n) {
                    let arg = self.prog.args(args)[k];
                    *val = self.eval(arg, handler)?;
                }
                apply_builtin(builtin, &vals[..n])
            }
            CExpr::CallBadArity { builtin, got } => {
                self.charge(1)?;
                Err(bad_arity(*builtin, *got))
            }
            CExpr::Ternary(cond, then_e, else_e) => {
                self.charge(1)?;
                let (cond, then_e, else_e) = (*cond, *then_e, *else_e);
                if self.eval(cond, handler)?.truthy()? {
                    self.eval(then_e, handler)
                } else {
                    self.eval(else_e, handler)
                }
            }
            CExpr::Random(rand) => {
                self.charge(1)?;
                let rand = rand.clone();
                let dist = self.build_dist(&rand.kind, handler)?;
                let addr = self.frame.address_for(&rand.site);
                handler.sample(addr, dist)
            }
        }
    }

    fn build_dist(
        &mut self,
        kind: &CRandKind,
        handler: &mut dyn Handler,
    ) -> Result<Dist, PplError> {
        match kind {
            CRandKind::Flip(p) => {
                let p = self.eval(*p, handler)?.as_real()?;
                Dist::try_flip(p)
            }
            CRandKind::UniformInt(lo, hi) => {
                let lo = self.eval(*lo, handler)?.as_int()?;
                let hi = self.eval(*hi, handler)?.as_int()?;
                Dist::try_uniform_int(lo, hi)
            }
            CRandKind::UniformReal(lo, hi) => {
                let lo = self.eval(*lo, handler)?.as_real()?;
                let hi = self.eval(*hi, handler)?.as_real()?;
                Dist::try_uniform_real(lo, hi)
            }
            CRandKind::Gauss(mean, std) => {
                let mean = self.eval(*mean, handler)?.as_real()?;
                let std = self.eval(*std, handler)?.as_real()?;
                Dist::try_normal(mean, std)
            }
            CRandKind::Categorical(ws) => {
                let ws = *ws;
                let mut probs = Vec::with_capacity(ws.len as usize);
                for k in 0..ws.len as usize {
                    let w = self.prog.args(ws)[k];
                    probs.push(self.eval(w, handler)?.as_real()?);
                }
                Dist::try_categorical(&probs)
            }
            CRandKind::Poisson(l) => {
                let l = self.eval(*l, handler)?.as_real()?;
                Dist::try_poisson(l)
            }
            CRandKind::GeometricDist(p) => {
                let p = self.eval(*p, handler)?.as_real()?;
                Dist::try_geometric(p)
            }
            CRandKind::Beta(a, b) => {
                let a = self.eval(*a, handler)?.as_real()?;
                let b = self.eval(*b, handler)?.as_real()?;
                Dist::try_beta(a, b)
            }
            CRandKind::Exponential(r) => {
                let r = self.eval(*r, handler)?.as_real()?;
                Dist::try_exponential(r)
            }
        }
    }

    fn exec_block(&mut self, id: CBlockId, handler: &mut dyn Handler) -> Result<(), PplError> {
        for i in 0..self.prog.block(id).stmts.len() {
            let sid = self.prog.block(id).stmts[i];
            self.exec_stmt(sid, handler)?;
        }
        Ok(())
    }

    fn exec_stmt(&mut self, id: CStmtId, handler: &mut dyn Handler) -> Result<(), PplError> {
        self.charge(1)?;
        match self.prog.stmt(id) {
            CStmt::Skip => Ok(()),
            CStmt::Assign { slot, expr, .. } => {
                let (slot, expr) = (*slot, *expr);
                let v = self.eval(expr, handler)?;
                self.frame.bind(slot, v, false);
                Ok(())
            }
            CStmt::AssignIndex {
                slot,
                name,
                index,
                expr,
            } => {
                let (slot, name, index, expr) = (*slot, *name, *index, *expr);
                let i = self.eval(index, handler)?.as_int()?;
                let v = self.eval(expr, handler)?;
                let s = self
                    .frame
                    .get_mut(slot)
                    .ok_or_else(|| PplError::UnboundVariable(name.to_string()))?;
                let items = s.value.as_array_mut()?;
                if i < 0 || i as usize >= items.len() {
                    return Err(PplError::IndexOutOfBounds {
                        index: i,
                        len: items.len(),
                    });
                }
                items[i as usize] = v;
                Ok(())
            }
            CStmt::If {
                cond,
                then_b,
                else_b,
            } => {
                let (cond, then_b, else_b) = (*cond, *then_b, *else_b);
                if self.eval(cond, handler)?.truthy()? {
                    self.exec_block(then_b, handler)
                } else {
                    self.exec_block(else_b, handler)
                }
            }
            CStmt::While { cond, body } => {
                let (cond, body) = (*cond, *body);
                let mut iter = 0_i64;
                loop {
                    self.frame.push_loop(iter);
                    let keep_going = self.eval(cond, handler).and_then(|v| v.truthy());
                    match keep_going {
                        Ok(true) => {}
                        other => {
                            self.frame.pop_loop();
                            return other.map(|_| ());
                        }
                    }
                    let r = self.exec_block(body, handler);
                    self.frame.pop_loop();
                    r?;
                    iter += 1;
                }
            }
            CStmt::For {
                slot, lo, hi, body, ..
            } => {
                let (slot, lo, hi, body) = (*slot, *lo, *hi, *body);
                let lo = self.eval(lo, handler)?.as_int()?;
                let hi = self.eval(hi, handler)?.as_int()?;
                for i in lo..hi {
                    self.frame.bind(slot, Value::Int(i), false);
                    self.frame.push_loop(i);
                    let r = self.exec_block(body, handler);
                    self.frame.pop_loop();
                    r?;
                }
                Ok(())
            }
            CStmt::Observe { rand, value } => {
                let value = *value;
                let rand = rand.clone();
                let dist = self.build_dist(&rand.kind, handler)?;
                let v = self.eval(value, handler)?;
                let addr = self.frame.address_for(&rand.site);
                handler.observe(addr, dist, v)
            }
        }
    }
}

/// The interpreter's arity-mismatch error, reproduced verbatim.
pub fn bad_arity(builtin: Builtin, got: usize) -> PplError {
    PplError::Other(format!(
        "{} expects {} argument(s), got {}",
        builtin.name(),
        builtin.arity(),
        got
    ))
}

// ---------------------------------------------------------------------------
// Compile cache.
// ---------------------------------------------------------------------------

/// Bound on cached compiled programs; the cache is cleared wholesale when
/// it fills (edit sequences reuse a handful of programs, so eviction
/// sophistication buys nothing).
const CACHE_MAX: usize = 256;

fn cache() -> &'static RwLock<FxHashMap<u64, Arc<CompiledProgram>>> {
    static CACHE: OnceLock<RwLock<FxHashMap<u64, Arc<CompiledProgram>>>> = OnceLock::new();
    CACHE.get_or_init(|| RwLock::new(FxHashMap::default()))
}

fn cache_key(tag: u8, program: &Program, extra: Option<&Program>) -> u64 {
    let mut h = FxHasher::default();
    h.write_u8(tag);
    h.write(format!("{program:?}").as_bytes());
    if let Some(p) = extra {
        h.write(format!("{p:?}").as_bytes());
    }
    h.finish()
}

fn cached(key: u64, make: impl FnOnce() -> CompiledProgram) -> Arc<CompiledProgram> {
    let t = telemetry();
    if let Some(hit) = cache().read().expect("compile cache poisoned").get(&key) {
        t.cache_hits.fetch_add(1, Ordering::Relaxed);
        return Arc::clone(hit);
    }
    t.cache_misses.fetch_add(1, Ordering::Relaxed);
    let compiled = Arc::new(make());
    let mut w = cache().write().expect("compile cache poisoned");
    if let Some(hit) = w.get(&key) {
        return Arc::clone(hit);
    }
    if w.len() >= CACHE_MAX {
        w.clear();
    }
    w.insert(key, Arc::clone(&compiled));
    compiled
}

/// The compiled form of `program`, from the global fingerprint-keyed
/// cache (compiling on first use). One compile is shared by every caller
/// — per-particle graph builds hit the cache.
pub fn compiled_for(program: &Program) -> Arc<CompiledProgram> {
    cached(cache_key(0, program, None), || compile(program))
}

/// Per-thread bound on pointer-keyed memo entries (edit sequences cycle
/// through a handful of live programs).
const SHARED_MEMO_MAX: usize = 8;

thread_local! {
    static SHARED_MEMO: RefCell<Vec<(Arc<Program>, Arc<CompiledProgram>)>> =
        const { RefCell::new(Vec::new()) };
}

/// [`compiled_for`] for a shared program handle: a per-thread memo keyed
/// by `Arc` pointer identity skips the fingerprint hash (a full AST
/// format) when the same handle recurs — the per-particle graph builds
/// along an edit sequence. The memo holds its key `Arc`s, so a memoized
/// pointer can never be freed and recycled while the entry lives.
pub fn compiled_for_shared(program: &Arc<Program>) -> Arc<CompiledProgram> {
    let memo_hit = SHARED_MEMO.with(|m| {
        m.borrow()
            .iter()
            .find(|(p, _)| Arc::ptr_eq(p, program))
            .map(|(_, c)| Arc::clone(c))
    });
    if let Some(compiled) = memo_hit {
        telemetry().cache_hits.fetch_add(1, Ordering::Relaxed);
        return compiled;
    }
    let compiled = compiled_for(program);
    SHARED_MEMO.with(|m| {
        let mut m = m.borrow_mut();
        if m.len() >= SHARED_MEMO_MAX {
            m.clear();
        }
        m.push((Arc::clone(program), Arc::clone(&compiled)));
    });
    compiled
}

/// The compiled form of `q` whose slot universe also covers every
/// variable of `p` — what change propagation from a `P`-graph needs (old
/// records replay `P`-named effects into the frame). Cached under the
/// pair of fingerprints.
pub fn compiled_for_pair(q: &Program, p: &Program) -> Arc<CompiledProgram> {
    cached(cache_key(1, q, Some(p)), || {
        let mut extra: Vec<&str> = Vec::new();
        collect_var_names(p, &mut extra);
        compile_with_extra_names(q, &extra)
    })
}

// ---------------------------------------------------------------------------
// Frame pool.
// ---------------------------------------------------------------------------

/// Per-thread bound on pooled frames (particle tasks are sequential per
/// worker; a small headroom covers re-entrant evaluation).
const FRAME_POOL_MAX: usize = 8;

thread_local! {
    static FRAME_POOL: RefCell<Vec<EvalFrame>> = const { RefCell::new(Vec::new()) };
}

/// A pooled [`EvalFrame`]: dereferences to the frame, returns the storage
/// to the owning worker's pool on drop.
#[derive(Debug)]
pub struct PooledFrame {
    frame: Option<EvalFrame>,
}

impl std::ops::Deref for PooledFrame {
    type Target = EvalFrame;
    fn deref(&self) -> &EvalFrame {
        self.frame.as_ref().expect("frame present until drop")
    }
}

impl std::ops::DerefMut for PooledFrame {
    fn deref_mut(&mut self) -> &mut EvalFrame {
        self.frame.as_mut().expect("frame present until drop")
    }
}

impl Drop for PooledFrame {
    fn drop(&mut self) {
        if let Some(frame) = self.frame.take() {
            FRAME_POOL.with(|pool| {
                let mut pool = pool.borrow_mut();
                if pool.len() < FRAME_POOL_MAX {
                    pool.push(frame);
                }
            });
        }
    }
}

/// Takes a frame from the current worker thread's pool (allocating one
/// the first time). The frame keeps its slot/loop capacity across uses,
/// so a warmed worker evaluates with zero per-eval allocation.
pub fn acquire_frame() -> PooledFrame {
    let t = telemetry();
    let frame = FRAME_POOL.with(|pool| pool.borrow_mut().pop());
    let frame = match frame {
        Some(f) => {
            t.frames_reused.fetch_add(1, Ordering::Relaxed);
            f
        }
        None => {
            t.frames_created.fetch_add(1, Ordering::Relaxed);
            EvalFrame::new()
        }
    };
    PooledFrame { frame: Some(frame) }
}

// ---------------------------------------------------------------------------
// Telemetry.
// ---------------------------------------------------------------------------

struct Telemetry {
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    compiled_execs: AtomicU64,
    tree_walk_execs: AtomicU64,
    frames_created: AtomicU64,
    frames_reused: AtomicU64,
}

fn telemetry() -> &'static Telemetry {
    static T: OnceLock<Telemetry> = OnceLock::new();
    T.get_or_init(|| Telemetry {
        cache_hits: AtomicU64::new(0),
        cache_misses: AtomicU64::new(0),
        compiled_execs: AtomicU64::new(0),
        tree_walk_execs: AtomicU64::new(0),
        frames_created: AtomicU64::new(0),
        frames_reused: AtomicU64::new(0),
    })
}

/// A snapshot of the compiled-evaluation counters (process-global,
/// monotonically increasing between [`reset_eval_counters`] calls).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalCounters {
    /// Compile-cache lookups served from the cache.
    pub compile_cache_hits: u64,
    /// Compile-cache lookups that compiled.
    pub compile_cache_misses: u64,
    /// Program executions through the compiled path.
    pub compiled_execs: u64,
    /// Program executions through the tree-walk reference path.
    pub tree_walk_execs: u64,
    /// Eval frames allocated fresh.
    pub frames_created: u64,
    /// Eval frames reused from a worker pool.
    pub frames_reused: u64,
}

/// Reads the current counter values.
pub fn eval_counters() -> EvalCounters {
    let t = telemetry();
    EvalCounters {
        compile_cache_hits: t.cache_hits.load(Ordering::Relaxed),
        compile_cache_misses: t.cache_misses.load(Ordering::Relaxed),
        compiled_execs: t.compiled_execs.load(Ordering::Relaxed),
        tree_walk_execs: t.tree_walk_execs.load(Ordering::Relaxed),
        frames_created: t.frames_created.load(Ordering::Relaxed),
        frames_reused: t.frames_reused.load(Ordering::Relaxed),
    }
}

/// Zeroes all counters (the metrics layer does this on install so a
/// report covers exactly one observed run).
pub fn reset_eval_counters() {
    let t = telemetry();
    t.cache_hits.store(0, Ordering::Relaxed);
    t.cache_misses.store(0, Ordering::Relaxed);
    t.compiled_execs.store(0, Ordering::Relaxed);
    t.tree_walk_execs.store(0, Ordering::Relaxed);
    t.frames_created.store(0, Ordering::Relaxed);
    t.frames_reused.store(0, Ordering::Relaxed);
}

/// Counts one execution through the tree-walk reference interpreter.
pub fn note_tree_walk_exec() {
    telemetry().tree_walk_execs.fetch_add(1, Ordering::Relaxed);
}

/// Counts one execution through a compiled program outside
/// [`run_compiled`] (the dependency-graph executors call this).
pub fn note_compiled_exec() {
    telemetry().compiled_execs.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Block, Expr};
    use crate::parse;

    fn count_folded(prog: &CompiledProgram) -> usize {
        prog.exprs
            .iter()
            .filter(|e| matches!(e, CExpr::Const { ticks, .. } if *ticks > 1))
            .count()
    }

    /// The outermost folded constant (folding is bottom-up, so the last
    /// folded node in arena order covers the whole subtree).
    fn last_folded(prog: &CompiledProgram) -> (Value, u32) {
        prog.exprs
            .iter()
            .filter_map(|e| match e {
                CExpr::Const { value, ticks } if *ticks > 1 => Some((value.clone(), *ticks)),
                _ => None,
            })
            .next_back()
            .unwrap()
    }

    #[test]
    fn constants_fold_with_tick_parity() {
        // `1 + 2 * 3` folds bottom-up: `2 * 3` to Const(6) with 3 ticks,
        // then the whole sum to Const(7) carrying all 5 ticks (add, mul,
        // three literals).
        let p = parse("x = 1 + 2 * 3; return x;").unwrap();
        let c = compile(&p);
        assert_eq!(count_folded(&c), 2);
        assert_eq!(last_folded(&c), (Value::Int(7), 5));
    }

    #[test]
    fn failing_operations_do_not_fold() {
        // Division by a constant zero must stay a runtime error, not a
        // compile failure or a folded poison value.
        let p = parse("x = 1 / 0; return x;").unwrap();
        let c = compile(&p);
        assert_eq!(count_folded(&c), 0);
        assert!(c
            .exprs
            .iter()
            .any(|e| matches!(e, CExpr::Binary(BinOp::Div, _, _))));
    }

    #[test]
    fn bad_arity_is_preserved_not_rejected() {
        let p = Program::new(
            Block::new(vec![Stmt::Assign(
                "x".into(),
                Expr::Call(Builtin::Sqrt, vec![Expr::int(1), Expr::int(2)]),
            )]),
            None,
        );
        let c = compile(&p);
        assert!(c
            .exprs
            .iter()
            .any(|e| matches!(e, CExpr::CallBadArity { got: 2, .. })));
    }

    #[test]
    fn slots_cover_reads_writes_and_loop_vars() {
        let p = parse("s = 0; for i in [0..3) { s = s + i; } return s + ghost;").unwrap();
        let c = compile(&p);
        assert!(c.slot_of("s").is_some());
        assert!(c.slot_of("i").is_some());
        // A never-written name still has a slot (it errors at runtime).
        assert!(c.slot_of("ghost").is_some());
        assert_eq!(c.slot_count(), 3);
    }

    #[test]
    fn extra_names_extend_the_slot_table() {
        let q = parse("x = 1; return x;").unwrap();
        let p = parse("y = 2; x = y; return x;").unwrap();
        let c = compile(&q);
        assert!(c.slot_of("y").is_none());
        let mut extra: Vec<&str> = Vec::new();
        collect_var_names(&p, &mut extra);
        let c2 = compile_with_extra_names(&q, &extra);
        assert!(c2.slot_of("y").is_some());
        assert!(c2.slot_of("x").is_some());
    }

    #[test]
    fn blocks_are_index_aligned_with_the_ast() {
        let p = parse("a = 1; skip; if a < 2 { b = 2; c = 3; } else { } return a;").unwrap();
        let c = compile(&p);
        let body = c.block(c.body());
        assert_eq!(body.stmts.len(), p.body.stmts().len());
        let CStmt::If { then_b, .. } = c.stmt(body.stmts[2]) else {
            panic!("third statement is the if");
        };
        let then_stmts = &c.block(*then_b).stmts;
        assert_eq!(then_stmts.len(), 2);
        assert!(matches!(c.stmt(then_stmts[0]), CStmt::Assign { name, .. } if *name == "b"));
    }

    #[test]
    fn compile_cache_hits_on_equal_programs() {
        let p = parse("unique_cache_probe_var = 41; return unique_cache_probe_var;").unwrap();
        let before = eval_counters();
        let a = compiled_for(&p);
        let b = compiled_for(&p);
        assert!(Arc::ptr_eq(&a, &b));
        let after = eval_counters();
        assert!(after.compile_cache_hits > before.compile_cache_hits);
    }

    #[test]
    fn pooled_frames_are_reused_on_the_same_thread() {
        // Isolate from other tests by measuring deltas.
        let before = eval_counters();
        {
            let mut f = acquire_frame();
            f.prepare(4);
            f.bind(SlotId(0), Value::Int(1), false);
        }
        let f2 = acquire_frame();
        drop(f2);
        let after = eval_counters();
        assert!(
            after.frames_reused > before.frames_reused
                || after.frames_created > before.frames_created
        );
    }

    #[test]
    fn folded_ternary_takes_the_constant_branch() {
        let p = parse("x = 1 < 2 ? 10 : 20; return x;").unwrap();
        let c = compile(&p);
        // cond (3 ticks: lt + two literals) + taken branch literal (1) +
        // ternary node (1) = 5 ticks.
        assert_eq!(last_folded(&c), (Value::Int(10), 5));
    }
}
