//! The Bernoulli distribution — the paper's `flip(p)`.

use rand::RngCore;

use super::support::Support;
use super::util::uniform_unit;
use crate::error::PplError;
use crate::logweight::LogWeight;
use crate::value::Value;

/// A Bernoulli distribution over `{false, true}` with success probability
/// `p` — the paper's `flip(p)` random expression.
///
/// # Examples
///
/// ```
/// use ppl::dist::Bernoulli;
/// use ppl::Value;
/// let d = Bernoulli::new(0.2).unwrap();
/// assert!((d.log_prob(&Value::Bool(true)).prob() - 0.2).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// Creates a Bernoulli distribution.
    ///
    /// # Errors
    ///
    /// Returns [`PplError::InvalidDistribution`] unless `0 <= p <= 1`.
    pub fn new(p: f64) -> Result<Bernoulli, PplError> {
        if !(0.0..=1.0).contains(&p) || p.is_nan() {
            return Err(PplError::InvalidDistribution(format!(
                "flip probability must be in [0, 1], got {p}"
            )));
        }
        Ok(Bernoulli { p })
    }

    /// The success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Samples a boolean.
    pub fn sample(&self, rng: &mut dyn RngCore) -> Value {
        Value::Bool(uniform_unit(rng) < self.p)
    }

    /// Log probability of `value` (zero outside `{0, 1}`).
    pub fn log_prob(&self, value: &Value) -> LogWeight {
        match value.truthy() {
            Ok(b) if Support::Booleans.contains(value) => {
                LogWeight::from_prob(if b { self.p } else { 1.0 - self.p })
            }
            _ => LogWeight::ZERO,
        }
    }

    /// The support `{false, true}`.
    pub fn support(&self) -> Support {
        Support::Booleans
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn validates_parameters() {
        assert!(Bernoulli::new(0.0).is_ok());
        assert!(Bernoulli::new(1.0).is_ok());
        assert!(Bernoulli::new(-0.1).is_err());
        assert!(Bernoulli::new(1.1).is_err());
        assert!(Bernoulli::new(f64::NAN).is_err());
    }

    #[test]
    fn log_prob_matches_parameter() {
        let d = Bernoulli::new(0.02).unwrap();
        assert!((d.log_prob(&Value::Bool(true)).prob() - 0.02).abs() < 1e-12);
        assert!((d.log_prob(&Value::Bool(false)).prob() - 0.98).abs() < 1e-12);
        // Numeric encodings of booleans score identically.
        assert_eq!(d.log_prob(&Value::Int(1)), d.log_prob(&Value::Bool(true)));
        assert!(d.log_prob(&Value::Int(2)).is_zero());
        assert!(d.log_prob(&Value::array(vec![])).is_zero());
    }

    #[test]
    fn sampling_frequency_matches_p() {
        let d = Bernoulli::new(0.3).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut hits = 0;
        for _ in 0..n {
            if d.sample(&mut rng).truthy().unwrap() {
                hits += 1;
            }
        }
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn degenerate_flips_are_deterministic() {
        let mut rng = StdRng::seed_from_u64(8);
        let always = Bernoulli::new(1.0).unwrap();
        let never = Bernoulli::new(0.0).unwrap();
        for _ in 0..100 {
            assert_eq!(always.sample(&mut rng), Value::Bool(true));
            assert_eq!(never.sample(&mut rng), Value::Bool(false));
        }
        assert!(always.log_prob(&Value::Bool(false)).is_zero());
    }
}
