//! The Beta distribution on `(0, 1)`.

use rand::RngCore;

use super::poisson::ln_gamma;
use super::support::Support;
use super::util::{standard_normal, uniform_positive};
use crate::error::PplError;
use crate::logweight::LogWeight;
use crate::value::Value;

/// A Beta(α, β) distribution on the open unit interval.
///
/// # Examples
///
/// ```
/// use ppl::dist::Beta;
/// use ppl::Value;
/// let d = Beta::new(1.0, 1.0).unwrap(); // uniform
/// assert!((d.log_prob(&Value::Real(0.3)).prob() - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Beta {
    alpha: f64,
    beta: f64,
}

impl Beta {
    /// Creates a Beta distribution.
    ///
    /// # Errors
    ///
    /// Returns [`PplError::InvalidDistribution`] unless both shape
    /// parameters are positive and finite.
    pub fn new(alpha: f64, beta: f64) -> Result<Beta, PplError> {
        if !alpha.is_finite() || !beta.is_finite() || alpha <= 0.0 || beta <= 0.0 {
            return Err(PplError::InvalidDistribution(format!(
                "beta shapes must be positive and finite, got Beta({alpha}, {beta})"
            )));
        }
        Ok(Beta { alpha, beta })
    }

    /// The first shape parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The second shape parameter.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Samples via two gamma draws: `X = G_α / (G_α + G_β)`.
    pub fn sample(&self, rng: &mut dyn RngCore) -> Value {
        let x = sample_gamma(self.alpha, rng);
        let y = sample_gamma(self.beta, rng);
        Value::Real((x / (x + y)).clamp(f64::MIN_POSITIVE, 1.0 - f64::EPSILON))
    }

    /// Log density on `(0, 1)`.
    pub fn log_prob(&self, value: &Value) -> LogWeight {
        match value.as_real() {
            Ok(x) if x > 0.0 && x < 1.0 => LogWeight::from_log(
                (self.alpha - 1.0) * x.ln()
                    + (self.beta - 1.0) * (1.0 - x).ln()
                    + ln_gamma(self.alpha + self.beta)
                    - ln_gamma(self.alpha)
                    - ln_gamma(self.beta),
            ),
            _ => LogWeight::ZERO,
        }
    }

    /// The support `(0, 1)`.
    pub fn support(&self) -> Support {
        Support::RealInterval { lo: 0.0, hi: 1.0 }
    }
}

/// Marsaglia–Tsang gamma sampling with unit scale; boosts shapes below 1.
pub(crate) fn sample_gamma(shape: f64, rng: &mut dyn RngCore) -> f64 {
    if shape < 1.0 {
        // Boost: G(a) = G(a+1) · U^{1/a}.
        let u = uniform_positive(rng);
        return sample_gamma(shape + 1.0, rng) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let z = standard_normal(rng);
        let v = 1.0 + c * z;
        if v <= 0.0 {
            continue;
        }
        let v = v * v * v;
        let u = uniform_positive(rng);
        if u.ln() < 0.5 * z * z + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn validates_shapes() {
        assert!(Beta::new(0.5, 2.0).is_ok());
        assert!(Beta::new(0.0, 1.0).is_err());
        assert!(Beta::new(1.0, -1.0).is_err());
        assert!(Beta::new(f64::INFINITY, 1.0).is_err());
    }

    #[test]
    fn density_integrates_to_one() {
        let d = Beta::new(2.5, 1.5).unwrap();
        let steps = 100_000;
        let h = 1.0 / steps as f64;
        let total: f64 = (0..steps)
            .map(|i| d.log_prob(&Value::Real((i as f64 + 0.5) * h)).prob() * h)
            .sum();
        assert!((total - 1.0).abs() < 1e-4, "integral {total}");
    }

    #[test]
    fn sample_moments() {
        // Beta(2, 3): mean 0.4, var = 2*3 / (25 * 6) = 0.04.
        let d = Beta::new(2.0, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(91);
        let n = 200_000;
        let (mut sum, mut sum_sq) = (0.0, 0.0);
        for _ in 0..n {
            let x = d.sample(&mut rng).as_real().unwrap();
            assert!((0.0..1.0).contains(&x));
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!((mean - 0.4).abs() < 0.005, "mean {mean}");
        assert!((var - 0.04).abs() < 0.005, "var {var}");
    }

    #[test]
    fn small_shape_sampling_works() {
        let d = Beta::new(0.3, 0.3).unwrap();
        let mut rng = StdRng::seed_from_u64(92);
        let n = 100_000;
        let mean: f64 = (0..n)
            .map(|_| d.sample(&mut rng).as_real().unwrap())
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn boundary_scores_zero() {
        let d = Beta::new(2.0, 2.0).unwrap();
        assert!(d.log_prob(&Value::Real(0.0)).is_zero());
        assert!(d.log_prob(&Value::Real(1.0)).is_zero());
        assert!(d.log_prob(&Value::Real(-0.5)).is_zero());
    }
}
