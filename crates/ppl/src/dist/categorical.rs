//! Categorical distribution over `0..k`, with linear- or log-space weights.
//!
//! This backs the `categorical_log` primitive used by the paper's HMM
//! programs (Listings 3–4), where transition and observation rows are stored
//! as log probabilities.

use rand::RngCore;

use super::support::Support;
use super::util::uniform_unit;
use crate::error::PplError;
use crate::logweight::{log_sum_exp, LogWeight};
use crate::value::Value;

/// A categorical distribution over the integers `0..k`.
///
/// Stored in log space internally; construct with [`Categorical::from_probs`]
/// or [`Categorical::from_log_probs`]. Unnormalized inputs are normalized.
///
/// # Examples
///
/// ```
/// use ppl::dist::Categorical;
/// use ppl::Value;
/// let d = Categorical::from_probs(&[0.2, 0.8]).unwrap();
/// assert!((d.log_prob(&Value::Int(1)).prob() - 0.8).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Categorical {
    log_probs: Vec<f64>,
}

impl Categorical {
    /// Creates a categorical from linear-space weights (normalized
    /// automatically).
    ///
    /// # Errors
    ///
    /// Returns [`PplError::InvalidDistribution`] if the weights are empty,
    /// contain negatives/NaNs, or sum to zero.
    pub fn from_probs(probs: &[f64]) -> Result<Categorical, PplError> {
        if probs.iter().any(|p| *p < 0.0 || p.is_nan()) {
            return Err(PplError::InvalidDistribution(
                "categorical weights must be non-negative".to_string(),
            ));
        }
        Self::from_log_probs(&probs.iter().map(|p| p.ln()).collect::<Vec<_>>())
    }

    /// Creates a categorical from log-space weights (normalized
    /// automatically) — the `categorical_log` primitive.
    ///
    /// # Errors
    ///
    /// Returns [`PplError::InvalidDistribution`] if the weights are empty,
    /// all `-inf`, or contain NaN/`+inf`.
    pub fn from_log_probs(log_probs: &[f64]) -> Result<Categorical, PplError> {
        if log_probs.is_empty() {
            return Err(PplError::InvalidDistribution(
                "categorical needs at least one outcome".to_string(),
            ));
        }
        if log_probs.iter().any(|p| p.is_nan() || *p == f64::INFINITY) {
            return Err(PplError::InvalidDistribution(
                "categorical log-weights must be finite or -inf".to_string(),
            ));
        }
        let lse = log_sum_exp(log_probs);
        if lse == f64::NEG_INFINITY {
            return Err(PplError::InvalidDistribution(
                "categorical weights sum to zero".to_string(),
            ));
        }
        Ok(Categorical {
            log_probs: log_probs.iter().map(|p| p - lse).collect(),
        })
    }

    /// The number of outcomes `k`.
    pub fn len(&self) -> usize {
        self.log_probs.len()
    }

    /// Whether the distribution has zero outcomes (never true for a
    /// successfully constructed value).
    pub fn is_empty(&self) -> bool {
        self.log_probs.is_empty()
    }

    /// The normalized log probabilities.
    pub fn log_probs(&self) -> &[f64] {
        &self.log_probs
    }

    /// Samples an outcome index by inverse CDF.
    pub fn sample(&self, rng: &mut dyn RngCore) -> Value {
        let u = uniform_unit(rng);
        let mut acc = 0.0;
        for (i, lp) in self.log_probs.iter().enumerate() {
            acc += lp.exp();
            if u < acc {
                return Value::Int(i as i64);
            }
        }
        // Floating-point slack: return the last outcome with positive mass.
        let last = self
            .log_probs
            .iter()
            .rposition(|lp| *lp > f64::NEG_INFINITY)
            .expect("categorical has positive mass by construction");
        Value::Int(last as i64)
    }

    /// Log probability of outcome `value`.
    pub fn log_prob(&self, value: &Value) -> LogWeight {
        match value.as_int() {
            Ok(i) if i >= 0 && (i as usize) < self.log_probs.len() => {
                LogWeight::from_log(self.log_probs[i as usize])
            }
            _ => LogWeight::ZERO,
        }
    }

    /// The support `0..=k-1`.
    pub fn support(&self) -> Support {
        Support::IntRange {
            lo: 0,
            hi: self.log_probs.len() as i64 - 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn validates_inputs() {
        assert!(Categorical::from_probs(&[]).is_err());
        assert!(Categorical::from_probs(&[-0.1, 1.0]).is_err());
        assert!(Categorical::from_probs(&[0.0, 0.0]).is_err());
        assert!(Categorical::from_log_probs(&[f64::NAN]).is_err());
        assert!(Categorical::from_log_probs(&[f64::NEG_INFINITY, 0.0]).is_ok());
    }

    #[test]
    fn normalizes_unnormalized_weights() {
        let d = Categorical::from_probs(&[1.0, 3.0]).unwrap();
        assert!((d.log_prob(&Value::Int(0)).prob() - 0.25).abs() < 1e-12);
        assert!((d.log_prob(&Value::Int(1)).prob() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn log_space_round_trip() {
        let d1 = Categorical::from_probs(&[0.1, 0.2, 0.7]).unwrap();
        let d2 = Categorical::from_log_probs(&[0.1_f64.ln(), 0.2_f64.ln(), 0.7_f64.ln()]).unwrap();
        for i in 0..3 {
            let a = d1.log_prob(&Value::Int(i)).log();
            let b = d2.log_prob(&Value::Int(i)).log();
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn out_of_range_scores_zero() {
        let d = Categorical::from_probs(&[0.5, 0.5]).unwrap();
        assert!(d.log_prob(&Value::Int(2)).is_zero());
        assert!(d.log_prob(&Value::Int(-1)).is_zero());
        assert!(d.log_prob(&Value::Real(0.5)).is_zero());
    }

    #[test]
    fn sampling_matches_weights() {
        let d = Categorical::from_probs(&[0.1, 0.6, 0.3]).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let mut counts = [0u32; 3];
        let n = 100_000;
        for _ in 0..n {
            counts[d.sample(&mut rng).as_int().unwrap() as usize] += 1;
        }
        assert!((counts[0] as f64 / n as f64 - 0.1).abs() < 0.01);
        assert!((counts[1] as f64 / n as f64 - 0.6).abs() < 0.01);
        assert!((counts[2] as f64 / n as f64 - 0.3).abs() < 0.01);
    }

    #[test]
    fn zero_mass_outcomes_never_sampled() {
        let d = Categorical::from_probs(&[0.0, 1.0, 0.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(22);
        for _ in 0..1000 {
            assert_eq!(d.sample(&mut rng), Value::Int(1));
        }
    }
}
