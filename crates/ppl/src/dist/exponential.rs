//! The exponential distribution on the positive reals.

use rand::RngCore;

use super::support::Support;
use super::util::uniform_positive;
use crate::error::PplError;
use crate::logweight::LogWeight;
use crate::value::Value;

/// An exponential distribution with rate `rate`.
///
/// # Examples
///
/// ```
/// use ppl::dist::Exponential;
/// use ppl::Value;
/// let d = Exponential::new(2.0).unwrap();
/// assert!((d.log_prob(&Value::Real(0.0)).prob() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution.
    ///
    /// # Errors
    ///
    /// Returns [`PplError::InvalidDistribution`] unless `rate` is
    /// positive and finite.
    pub fn new(rate: f64) -> Result<Exponential, PplError> {
        if !rate.is_finite() || rate <= 0.0 {
            return Err(PplError::InvalidDistribution(format!(
                "exponential rate must be positive and finite, got {rate}"
            )));
        }
        Ok(Exponential { rate })
    }

    /// The rate parameter.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Samples by inversion: `−ln U / rate`.
    pub fn sample(&self, rng: &mut dyn RngCore) -> Value {
        Value::Real(-uniform_positive(rng).ln() / self.rate)
    }

    /// Log density `ln rate − rate · x` for `x ≥ 0`.
    pub fn log_prob(&self, value: &Value) -> LogWeight {
        match value.as_real() {
            Ok(x) if x >= 0.0 && x.is_finite() => {
                LogWeight::from_log(self.rate.ln() - self.rate * x)
            }
            _ => LogWeight::ZERO,
        }
    }

    /// The support `[0, ∞)`, represented as a half-open real interval to
    /// infinity.
    pub fn support(&self) -> Support {
        Support::RealInterval {
            lo: 0.0,
            hi: f64::INFINITY,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn validates_rate() {
        assert!(Exponential::new(1.0).is_ok());
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(f64::NAN).is_err());
    }

    #[test]
    fn density_integrates_to_one() {
        let d = Exponential::new(1.5).unwrap();
        let steps = 200_000;
        let h = 20.0 / steps as f64;
        let total: f64 = (0..steps)
            .map(|i| d.log_prob(&Value::Real((i as f64 + 0.5) * h)).prob() * h)
            .sum();
        assert!((total - 1.0).abs() < 1e-4, "integral {total}");
    }

    #[test]
    fn sample_moments() {
        let d = Exponential::new(0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(101);
        let n = 200_000;
        let mean: f64 = (0..n)
            .map(|_| d.sample(&mut rng).as_real().unwrap())
            .sum::<f64>()
            / n as f64;
        assert!((mean - 2.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn negatives_score_zero() {
        let d = Exponential::new(1.0).unwrap();
        assert!(d.log_prob(&Value::Real(-0.1)).is_zero());
        assert!(!d.log_prob(&Value::Real(0.0)).is_zero());
    }
}
