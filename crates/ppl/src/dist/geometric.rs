//! The geometric distribution: trials until the first failure.
//!
//! This is the marginal of the paper's Figure 6 program (`while(flip(p))
//! n++`): the number of successful flips before the first failure.

use rand::RngCore;

use super::support::Support;
use super::util::uniform_positive;
use crate::error::PplError;
use crate::logweight::LogWeight;
use crate::value::Value;

/// A geometric distribution over `{0, 1, 2, …}`: the number of successes
/// (probability `p` each) before the first failure.
/// `P(X = k) = p^k (1 − p)`.
///
/// # Examples
///
/// ```
/// use ppl::dist::Geometric;
/// use ppl::Value;
/// let d = Geometric::new(0.5).unwrap();
/// assert!((d.log_prob(&Value::Int(2)).prob() - 0.125).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Geometric {
    p: f64,
}

impl Geometric {
    /// Creates a geometric distribution with continue-probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`PplError::InvalidDistribution`] unless `0 <= p < 1`.
    pub fn new(p: f64) -> Result<Geometric, PplError> {
        if !(0.0..1.0).contains(&p) || p.is_nan() {
            return Err(PplError::InvalidDistribution(format!(
                "geometric continue-probability must be in [0, 1), got {p}"
            )));
        }
        Ok(Geometric { p })
    }

    /// The continue probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Samples by inversion: `k = ⌊ln U / ln p⌋`.
    pub fn sample(&self, rng: &mut dyn RngCore) -> Value {
        if self.p == 0.0 {
            return Value::Int(0);
        }
        let u = uniform_positive(rng);
        Value::Int((u.ln() / self.p.ln()).floor() as i64)
    }

    /// Log probability `k·ln p + ln(1 − p)`.
    pub fn log_prob(&self, value: &Value) -> LogWeight {
        match value.as_int() {
            // k = 0 is special-cased so p = 0 avoids 0 · ln 0 = NaN.
            Ok(0) => LogWeight::from_prob(1.0 - self.p),
            Ok(k) if k > 0 => LogWeight::from_log(k as f64 * self.p.ln() + (1.0 - self.p).ln()),
            _ => LogWeight::ZERO,
        }
    }

    /// The support: all non-negative integers.
    pub fn support(&self) -> Support {
        Support::NonNegativeInts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn validates_parameter() {
        assert!(Geometric::new(0.0).is_ok());
        assert!(Geometric::new(0.99).is_ok());
        assert!(Geometric::new(1.0).is_err());
        assert!(Geometric::new(-0.1).is_err());
    }

    #[test]
    fn pmf_sums_to_one() {
        let d = Geometric::new(0.7).unwrap();
        let total: f64 = (0..500).map(|k| d.log_prob(&Value::Int(k)).prob()).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn matches_figure6_program_marginal() {
        // The while-loop geometric of Fig. 6 with p produces n = X + 1
        // where X ~ Geometric(p).
        use crate::handlers::simulate;
        use crate::{addr, Handler};
        let p = 0.5;
        let program = move |h: &mut dyn Handler| {
            let mut n = 1i64;
            let mut i = 0i64;
            while h
                .sample(addr!["t", i], super::super::Dist::flip(p))?
                .truthy()?
            {
                n += 1;
                i += 1;
            }
            Ok(Value::Int(n))
        };
        let d = Geometric::new(p).unwrap();
        let mut rng = StdRng::seed_from_u64(81);
        let n = 100_000;
        let mut program_counts = std::collections::HashMap::new();
        let mut dist_counts = std::collections::HashMap::new();
        for _ in 0..n {
            let t = simulate(&program, &mut rng).unwrap();
            let v = t.return_value().unwrap().as_int().unwrap();
            *program_counts.entry(v).or_insert(0usize) += 1;
            let x = d.sample(&mut rng).as_int().unwrap() + 1;
            *dist_counts.entry(x).or_insert(0usize) += 1;
        }
        for k in 1..8i64 {
            let a = *program_counts.get(&k).unwrap_or(&0) as f64 / n as f64;
            let b = *dist_counts.get(&k).unwrap_or(&0) as f64 / n as f64;
            assert!((a - b).abs() < 0.01, "k={k}: program {a} vs dist {b}");
        }
    }

    #[test]
    fn degenerate_p_zero() {
        let d = Geometric::new(0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(82);
        assert_eq!(d.sample(&mut rng), Value::Int(0));
        assert_eq!(d.log_prob(&Value::Int(0)), LogWeight::ONE);
        assert!(d.log_prob(&Value::Int(1)).is_zero());
    }
}
