//! Two-component normal mixture — the `two_normals` primitive of the robust
//! regression program (Listing 2).

use rand::RngCore;

use super::normal::Normal;
use super::support::Support;
use super::util::uniform_unit;
use crate::error::PplError;
use crate::logweight::{log_sum_exp, LogWeight};
use crate::value::Value;

/// A mixture of two normals with a shared mean: with probability
/// `p_outlier` the observation is drawn from `N(mean, outlier_std)`,
/// otherwise from `N(mean, inlier_std)`.
///
/// This marginalizes out the per-point outlier indicator of robust Bayesian
/// regression, exactly like the `two_normals` distribution in the paper's
/// Listing 2.
///
/// # Examples
///
/// ```
/// use ppl::dist::TwoNormals;
/// use ppl::Value;
/// let d = TwoNormals::new(0.0, 0.1, 1.0, 10.0).unwrap();
/// assert!(d.log_prob(&Value::Real(0.0)).log().is_finite());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TwoNormals {
    mean: f64,
    p_outlier: f64,
    inlier: Normal,
    outlier: Normal,
}

impl TwoNormals {
    /// Creates a two-component normal mixture.
    ///
    /// # Errors
    ///
    /// Returns [`PplError::InvalidDistribution`] unless
    /// `0 <= p_outlier <= 1` and both standard deviations are positive and
    /// finite.
    pub fn new(
        mean: f64,
        p_outlier: f64,
        inlier_std: f64,
        outlier_std: f64,
    ) -> Result<TwoNormals, PplError> {
        if !(0.0..=1.0).contains(&p_outlier) || p_outlier.is_nan() {
            return Err(PplError::InvalidDistribution(format!(
                "outlier probability must be in [0, 1], got {p_outlier}"
            )));
        }
        Ok(TwoNormals {
            mean,
            p_outlier,
            inlier: Normal::new(mean, inlier_std)?,
            outlier: Normal::new(mean, outlier_std)?,
        })
    }

    /// The shared mean of both components.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The outlier-component probability.
    pub fn p_outlier(&self) -> f64 {
        self.p_outlier
    }

    /// Samples by first picking the component, then the normal draw.
    pub fn sample(&self, rng: &mut dyn RngCore) -> Value {
        if uniform_unit(rng) < self.p_outlier {
            self.outlier.sample(rng)
        } else {
            self.inlier.sample(rng)
        }
    }

    /// Log density: `log(p·N_out(x) + (1-p)·N_in(x))`, computed stably.
    pub fn log_prob(&self, value: &Value) -> LogWeight {
        let in_lp = self.inlier.log_prob(value);
        let out_lp = self.outlier.log_prob(value);
        if in_lp.is_zero() && out_lp.is_zero() {
            return LogWeight::ZERO;
        }
        LogWeight::from_log(log_sum_exp(&[
            (1.0 - self.p_outlier).ln() + in_lp.log(),
            self.p_outlier.ln() + out_lp.log(),
        ]))
    }

    /// The support: the whole real line.
    pub fn support(&self) -> Support {
        Support::RealLine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn validates_parameters() {
        assert!(TwoNormals::new(0.0, 0.5, 1.0, 2.0).is_ok());
        assert!(TwoNormals::new(0.0, -0.1, 1.0, 2.0).is_err());
        assert!(TwoNormals::new(0.0, 1.1, 1.0, 2.0).is_err());
        assert!(TwoNormals::new(0.0, 0.5, 0.0, 2.0).is_err());
        assert!(TwoNormals::new(0.0, 0.5, 1.0, -2.0).is_err());
    }

    #[test]
    fn degenerate_mixture_matches_single_normal() {
        let mix = TwoNormals::new(1.0, 0.0, 0.5, 10.0).unwrap();
        let n = Normal::new(1.0, 0.5).unwrap();
        for x in [-1.0, 0.0, 1.0, 2.5] {
            let a = mix.log_prob(&Value::Real(x)).log();
            let b = n.log_prob(&Value::Real(x)).log();
            assert!((a - b).abs() < 1e-12, "x={x}: {a} vs {b}");
        }
    }

    #[test]
    fn mixture_density_is_convex_combination() {
        let mix = TwoNormals::new(0.0, 0.3, 1.0, 5.0).unwrap();
        let n_in = Normal::new(0.0, 1.0).unwrap();
        let n_out = Normal::new(0.0, 5.0).unwrap();
        let x = Value::Real(2.0);
        let expected = 0.7 * n_in.log_prob(&x).prob() + 0.3 * n_out.log_prob(&x).prob();
        assert!((mix.log_prob(&x).prob() - expected).abs() < 1e-12);
    }

    #[test]
    fn heavy_tail_dominates_far_out() {
        // Far from the mean, the outlier component carries essentially all
        // mass, so the mixture density is ~ p_outlier * N_out.
        let mix = TwoNormals::new(0.0, 0.1, 0.5, 20.0).unwrap();
        let n_out = Normal::new(0.0, 20.0).unwrap();
        let x = Value::Real(30.0);
        let ratio = mix.log_prob(&x).prob() / (0.1 * n_out.log_prob(&x).prob());
        assert!((ratio - 1.0).abs() < 1e-6, "ratio {ratio}");
    }

    #[test]
    fn sample_variance_between_components() {
        let mix = TwoNormals::new(0.0, 0.5, 1.0, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(51);
        let n = 200_000;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let x = mix.sample(&mut rng).as_real().unwrap();
            sum_sq += x * x;
        }
        // variance = 0.5*1 + 0.5*9 = 5
        let var = sum_sq / n as f64;
        assert!((var - 5.0).abs() < 0.1, "var {var}");
    }
}
