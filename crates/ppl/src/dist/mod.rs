//! Primitive distributions of the probabilistic language.
//!
//! The paper's core language has `flip` and integer `uniform`
//! (Section 3); the evaluation programs additionally use `normal`/`gauss`,
//! log-space categoricals, a continuous uniform, and the `two_normals`
//! robust-observation mixture (Listings 1–5). Each family lives in its own
//! module; [`Dist`] is the closed sum used by traces and handlers.

pub mod bernoulli;
pub mod beta;
pub mod categorical;
pub mod exponential;
pub mod geometric;
pub mod mixture;
pub mod normal;
pub mod poisson;
pub mod support;
pub mod uniform_int;
pub mod uniform_real;
pub mod util;

pub use bernoulli::Bernoulli;
pub use beta::Beta;
pub use categorical::Categorical;
pub use exponential::Exponential;
pub use geometric::Geometric;
pub use mixture::TwoNormals;
pub use normal::Normal;
pub use poisson::Poisson;
pub use support::Support;
pub use uniform_int::UniformInt;
pub use uniform_real::UniformReal;

use rand::RngCore;

use crate::error::PplError;
use crate::logweight::LogWeight;
use crate::value::Value;

/// A primitive distribution: the closed union of all families the language
/// supports.
///
/// `Dist` values are stored inside [`crate::trace::Trace`]s so that any
/// recorded choice can later be re-scored, re-sampled, or support-checked —
/// the operations the trace translator of Section 5 needs.
///
/// # Examples
///
/// ```
/// use ppl::dist::Dist;
/// use ppl::Value;
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let d = Dist::flip(0.5);
/// let v = d.sample(&mut rng);
/// assert!(!d.log_prob(&v).is_zero());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Dist {
    /// `flip(p)`.
    Bernoulli(Bernoulli),
    /// `uniform(lo, hi)` over integers.
    UniformInt(UniformInt),
    /// Categorical over `0..k`.
    Categorical(Categorical),
    /// `normal(mean, std)` / `gauss`.
    Normal(Normal),
    /// Continuous uniform on `[lo, hi)`.
    UniformReal(UniformReal),
    /// Two-component robust observation mixture.
    TwoNormals(TwoNormals),
    /// Poisson counts.
    Poisson(Poisson),
    /// Geometric trials-before-failure.
    Geometric(Geometric),
    /// Beta on the unit interval.
    Beta(Beta),
    /// Exponential waiting times.
    Exponential(Exponential),
}

impl Dist {
    /// `flip(p)`; panics on invalid `p`. Use [`Bernoulli::new`] for a
    /// fallible constructor.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p <= 1`.
    pub fn flip(p: f64) -> Dist {
        Dist::Bernoulli(Bernoulli::new(p).expect("invalid flip probability"))
    }

    /// Integer `uniform(lo, hi)` (inclusive); panics on an empty range.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform_int(lo: i64, hi: i64) -> Dist {
        Dist::UniformInt(UniformInt::new(lo, hi).expect("invalid uniform range"))
    }

    /// Categorical from linear weights; panics on invalid weights.
    ///
    /// # Panics
    ///
    /// Panics if the weights are empty, negative, or sum to zero.
    pub fn categorical(probs: &[f64]) -> Dist {
        Dist::Categorical(Categorical::from_probs(probs).expect("invalid categorical"))
    }

    /// Categorical from log weights; panics on invalid weights.
    ///
    /// # Panics
    ///
    /// Panics if the weights are empty or all `-inf`.
    pub fn categorical_log(log_probs: &[f64]) -> Dist {
        Dist::Categorical(Categorical::from_log_probs(log_probs).expect("invalid categorical"))
    }

    /// `normal(mean, std)`; panics on invalid parameters.
    ///
    /// # Panics
    ///
    /// Panics unless `std > 0` and both parameters are finite.
    pub fn normal(mean: f64, std: f64) -> Dist {
        Dist::Normal(Normal::new(mean, std).expect("invalid normal"))
    }

    /// Continuous uniform on `[lo, hi)`; panics on an invalid interval.
    ///
    /// # Panics
    ///
    /// Panics unless `lo < hi` and both are finite.
    pub fn uniform_real(lo: f64, hi: f64) -> Dist {
        Dist::UniformReal(UniformReal::new(lo, hi).expect("invalid uniform interval"))
    }

    /// `two_normals(mean, p_outlier, inlier_std, outlier_std)`; panics on
    /// invalid parameters.
    ///
    /// # Panics
    ///
    /// Panics on parameters rejected by [`TwoNormals::new`].
    pub fn two_normals(mean: f64, p_outlier: f64, inlier_std: f64, outlier_std: f64) -> Dist {
        Dist::TwoNormals(
            TwoNormals::new(mean, p_outlier, inlier_std, outlier_std).expect("invalid mixture"),
        )
    }

    /// `poisson(lambda)`; panics on invalid parameters.
    ///
    /// # Panics
    ///
    /// Panics unless `lambda > 0` and finite.
    pub fn poisson(lambda: f64) -> Dist {
        Dist::Poisson(Poisson::new(lambda).expect("invalid poisson"))
    }

    /// `geometric(p)`; panics on invalid parameters.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1`.
    pub fn geometric(p: f64) -> Dist {
        Dist::Geometric(Geometric::new(p).expect("invalid geometric"))
    }

    /// `beta(alpha, beta)`; panics on invalid parameters.
    ///
    /// # Panics
    ///
    /// Panics unless both shapes are positive and finite.
    pub fn beta(alpha: f64, b: f64) -> Dist {
        Dist::Beta(Beta::new(alpha, b).expect("invalid beta"))
    }

    /// `exponential(rate)`; panics on invalid parameters.
    ///
    /// # Panics
    ///
    /// Panics unless `rate > 0` and finite.
    pub fn exponential(rate: f64) -> Dist {
        Dist::Exponential(Exponential::new(rate).expect("invalid exponential"))
    }

    /// Fallible Poisson.
    ///
    /// # Errors
    ///
    /// Propagates [`PplError::InvalidDistribution`].
    pub fn try_poisson(lambda: f64) -> Result<Dist, PplError> {
        Ok(Dist::Poisson(Poisson::new(lambda)?))
    }

    /// Fallible geometric.
    ///
    /// # Errors
    ///
    /// Propagates [`PplError::InvalidDistribution`].
    pub fn try_geometric(p: f64) -> Result<Dist, PplError> {
        Ok(Dist::Geometric(Geometric::new(p)?))
    }

    /// Fallible beta.
    ///
    /// # Errors
    ///
    /// Propagates [`PplError::InvalidDistribution`].
    pub fn try_beta(alpha: f64, b: f64) -> Result<Dist, PplError> {
        Ok(Dist::Beta(Beta::new(alpha, b)?))
    }

    /// Fallible exponential.
    ///
    /// # Errors
    ///
    /// Propagates [`PplError::InvalidDistribution`].
    pub fn try_exponential(rate: f64) -> Result<Dist, PplError> {
        Ok(Dist::Exponential(Exponential::new(rate)?))
    }

    /// Fallible `flip` used by interpreters, where parameters come from
    /// program expressions and may be invalid.
    ///
    /// # Errors
    ///
    /// Propagates [`PplError::InvalidDistribution`].
    pub fn try_flip(p: f64) -> Result<Dist, PplError> {
        Ok(Dist::Bernoulli(Bernoulli::new(p)?))
    }

    /// Fallible integer uniform.
    ///
    /// # Errors
    ///
    /// Propagates [`PplError::InvalidDistribution`].
    pub fn try_uniform_int(lo: i64, hi: i64) -> Result<Dist, PplError> {
        Ok(Dist::UniformInt(UniformInt::new(lo, hi)?))
    }

    /// Fallible normal.
    ///
    /// # Errors
    ///
    /// Propagates [`PplError::InvalidDistribution`].
    pub fn try_normal(mean: f64, std: f64) -> Result<Dist, PplError> {
        Ok(Dist::Normal(Normal::new(mean, std)?))
    }

    /// Fallible continuous uniform.
    ///
    /// # Errors
    ///
    /// Propagates [`PplError::InvalidDistribution`].
    pub fn try_uniform_real(lo: f64, hi: f64) -> Result<Dist, PplError> {
        Ok(Dist::UniformReal(UniformReal::new(lo, hi)?))
    }

    /// Fallible categorical from linear weights.
    ///
    /// # Errors
    ///
    /// Propagates [`PplError::InvalidDistribution`].
    pub fn try_categorical(probs: &[f64]) -> Result<Dist, PplError> {
        Ok(Dist::Categorical(Categorical::from_probs(probs)?))
    }

    /// Samples a value.
    pub fn sample(&self, rng: &mut dyn RngCore) -> Value {
        match self {
            Dist::Bernoulli(d) => d.sample(rng),
            Dist::UniformInt(d) => d.sample(rng),
            Dist::Categorical(d) => d.sample(rng),
            Dist::Normal(d) => d.sample(rng),
            Dist::UniformReal(d) => d.sample(rng),
            Dist::TwoNormals(d) => d.sample(rng),
            Dist::Poisson(d) => d.sample(rng),
            Dist::Geometric(d) => d.sample(rng),
            Dist::Beta(d) => d.sample(rng),
            Dist::Exponential(d) => d.sample(rng),
        }
    }

    /// Log probability (discrete) or log density (continuous) of `value`.
    ///
    /// Values outside the support (including ill-typed values) score
    /// [`LogWeight::ZERO`].
    pub fn log_prob(&self, value: &Value) -> LogWeight {
        match self {
            Dist::Bernoulli(d) => d.log_prob(value),
            Dist::UniformInt(d) => d.log_prob(value),
            Dist::Categorical(d) => d.log_prob(value),
            Dist::Normal(d) => d.log_prob(value),
            Dist::UniformReal(d) => d.log_prob(value),
            Dist::TwoNormals(d) => d.log_prob(value),
            Dist::Poisson(d) => d.log_prob(value),
            Dist::Geometric(d) => d.log_prob(value),
            Dist::Beta(d) => d.log_prob(value),
            Dist::Exponential(d) => d.log_prob(value),
        }
    }

    /// The support of the distribution.
    pub fn support(&self) -> Support {
        match self {
            Dist::Bernoulli(d) => d.support(),
            Dist::UniformInt(d) => d.support(),
            Dist::Categorical(d) => d.support(),
            Dist::Normal(d) => d.support(),
            Dist::UniformReal(d) => d.support(),
            Dist::TwoNormals(d) => d.support(),
            Dist::Poisson(d) => d.support(),
            Dist::Geometric(d) => d.support(),
            Dist::Beta(d) => d.support(),
            Dist::Exponential(d) => d.support(),
        }
    }

    /// Whether the distribution is discrete.
    pub fn is_discrete(&self) -> bool {
        self.support().is_discrete()
    }

    /// Enumerates the support when finite and discrete (for exact
    /// enumeration and Gibbs sweeps); `None` for continuous families.
    pub fn enumerate_support(&self) -> Option<Vec<Value>> {
        self.support().enumerate()
    }

    /// Whether two distributions have equal supports — the reuse condition
    /// of the forward kernel (Section 5.1, case (ii)).
    pub fn same_support(&self, other: &Dist) -> bool {
        self.support() == other.support()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn all_dists() -> Vec<Dist> {
        vec![
            Dist::flip(0.3),
            Dist::uniform_int(1, 6),
            Dist::categorical(&[0.2, 0.8]),
            Dist::normal(0.0, 1.0),
            Dist::uniform_real(0.0, 1.0),
            Dist::two_normals(0.0, 0.1, 1.0, 5.0),
        ]
    }

    #[test]
    fn samples_score_positively() {
        let mut rng = StdRng::seed_from_u64(61);
        for d in all_dists() {
            for _ in 0..100 {
                let v = d.sample(&mut rng);
                assert!(
                    !d.log_prob(&v).is_zero(),
                    "sample {v:?} of {d:?} scored zero"
                );
                assert!(d.support().contains(&v));
            }
        }
    }

    #[test]
    fn discreteness_flags() {
        assert!(Dist::flip(0.5).is_discrete());
        assert!(Dist::uniform_int(0, 3).is_discrete());
        assert!(Dist::categorical(&[1.0]).is_discrete());
        assert!(!Dist::normal(0.0, 1.0).is_discrete());
        assert!(!Dist::uniform_real(0.0, 1.0).is_discrete());
        assert!(!Dist::two_normals(0.0, 0.5, 1.0, 2.0).is_discrete());
    }

    #[test]
    fn same_support_is_the_paper_reuse_condition() {
        // Fig. 5: delta = flip(1/2) and theta = uniform(1,6) must NOT match.
        assert!(!Dist::flip(0.5).same_support(&Dist::uniform_int(1, 6)));
        // beta = uniform(0,5) and eta = flip(1/2) must not match either.
        assert!(!Dist::uniform_int(0, 5).same_support(&Dist::flip(0.5)));
        // flips with different p still share support — they may be reused.
        assert!(Dist::flip(0.1).same_support(&Dist::flip(0.9)));
        // uniform(0,9) from `uniform(0, x)` with x = 9 matches uniform(0,9).
        assert!(Dist::uniform_int(0, 9).same_support(&Dist::uniform_int(0, 9)));
        assert!(!Dist::uniform_int(0, 9).same_support(&Dist::uniform_int(0, 8)));
        // all normals share the real line.
        assert!(Dist::normal(0.0, 1.0).same_support(&Dist::normal(5.0, 2.0)));
        assert!(Dist::normal(0.0, 1.0).same_support(&Dist::two_normals(0.0, 0.5, 1.0, 2.0)));
    }

    #[test]
    fn enumerate_support_for_discrete_only() {
        assert_eq!(Dist::flip(0.5).enumerate_support().unwrap().len(), 2);
        assert_eq!(
            Dist::uniform_int(1, 6).enumerate_support().unwrap().len(),
            6
        );
        assert!(Dist::normal(0.0, 1.0).enumerate_support().is_none());
    }

    #[test]
    fn try_constructors_propagate_errors() {
        assert!(Dist::try_flip(2.0).is_err());
        assert!(Dist::try_uniform_int(3, 2).is_err());
        assert!(Dist::try_normal(0.0, -1.0).is_err());
        assert!(Dist::try_uniform_real(1.0, 1.0).is_err());
        assert!(Dist::try_categorical(&[]).is_err());
        assert!(Dist::try_flip(0.5).is_ok());
    }

    #[test]
    #[should_panic]
    fn infallible_flip_panics_on_bad_p() {
        let _ = Dist::flip(1.5);
    }
}
