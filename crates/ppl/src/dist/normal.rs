//! The normal (Gaussian) distribution — PSI's `gauss`, the embedding's
//! `normal`.

use rand::RngCore;

use super::support::Support;
use super::util::{standard_normal, standard_normal_log_pdf};
use crate::error::PplError;
use crate::logweight::LogWeight;
use crate::value::Value;

/// A normal distribution with mean `mean` and standard deviation `std`.
///
/// Continuous choices are scored by density, per the paper's Section 3
/// "Continuous Distributions" remarks.
///
/// # Examples
///
/// ```
/// use ppl::dist::Normal;
/// use ppl::Value;
/// let d = Normal::new(0.0, 1.0).unwrap();
/// let peak = d.log_prob(&Value::Real(0.0)).log();
/// assert!((peak - (-0.5 * (2.0 * std::f64::consts::PI).ln())).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Normal {
    mean: f64,
    std: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Errors
    ///
    /// Returns [`PplError::InvalidDistribution`] unless `std > 0` and both
    /// parameters are finite.
    pub fn new(mean: f64, std: f64) -> Result<Normal, PplError> {
        if !mean.is_finite() || !std.is_finite() || std <= 0.0 {
            return Err(PplError::InvalidDistribution(format!(
                "normal requires finite mean and positive std, got N({mean}, {std})"
            )));
        }
        Ok(Normal { mean, std })
    }

    /// The mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard deviation.
    pub fn std(&self) -> f64 {
        self.std
    }

    /// Samples a real.
    pub fn sample(&self, rng: &mut dyn RngCore) -> Value {
        Value::Real(self.mean + self.std * standard_normal(rng))
    }

    /// Log density of `value`.
    pub fn log_prob(&self, value: &Value) -> LogWeight {
        match value.as_real() {
            Ok(x) if x.is_finite() => {
                let z = (x - self.mean) / self.std;
                LogWeight::from_log(standard_normal_log_pdf(z) - self.std.ln())
            }
            _ => LogWeight::ZERO,
        }
    }

    /// The support: the whole real line.
    pub fn support(&self) -> Support {
        Support::RealLine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn validates_parameters() {
        assert!(Normal::new(0.0, 1.0).is_ok());
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn density_integrates_to_one() {
        // Riemann sum over [-10, 10] with N(1, 2).
        let d = Normal::new(1.0, 2.0).unwrap();
        let steps = 20_000;
        let h = 20.0 / steps as f64;
        let mut total = 0.0;
        for i in 0..steps {
            let x = -10.0 + (i as f64 + 0.5) * h + 1.0;
            total += d.log_prob(&Value::Real(x)).prob() * h;
        }
        assert!((total - 1.0).abs() < 1e-4, "integral {total}");
    }

    #[test]
    fn sample_moments() {
        let d = Normal::new(3.0, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(31);
        let n = 200_000;
        let (mut sum, mut sum_sq) = (0.0, 0.0);
        for _ in 0..n {
            let x = d.sample(&mut rng).as_real().unwrap();
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!((mean - 3.0).abs() < 0.01, "mean {mean}");
        assert!((var - 0.25).abs() < 0.01, "var {var}");
    }

    #[test]
    fn non_numeric_scores_zero() {
        let d = Normal::new(0.0, 1.0).unwrap();
        assert!(d.log_prob(&Value::array(vec![])).is_zero());
        assert!(d.log_prob(&Value::Real(f64::INFINITY)).is_zero());
        // Integers live on the real line after coercion.
        assert!(!d.log_prob(&Value::Int(0)).is_zero());
    }
}
