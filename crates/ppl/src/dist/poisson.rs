//! The Poisson distribution over non-negative counts.

use rand::RngCore;

use super::support::Support;
use super::util::uniform_unit;
use crate::error::PplError;
use crate::logweight::LogWeight;
use crate::value::Value;

/// A Poisson distribution with rate `lambda`.
///
/// # Examples
///
/// ```
/// use ppl::dist::Poisson;
/// use ppl::Value;
/// let d = Poisson::new(2.0).unwrap();
/// // P(X = 0) = e^{-2}
/// assert!((d.log_prob(&Value::Int(0)).log() + 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates a Poisson distribution.
    ///
    /// # Errors
    ///
    /// Returns [`PplError::InvalidDistribution`] unless `lambda` is
    /// positive and finite.
    pub fn new(lambda: f64) -> Result<Poisson, PplError> {
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(PplError::InvalidDistribution(format!(
                "poisson rate must be positive and finite, got {lambda}"
            )));
        }
        Ok(Poisson { lambda })
    }

    /// The rate parameter.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Samples by inversion (sequential search), numerically stable for
    /// moderate rates; falls back to a normal approximation above 700
    /// where `e^{-λ}` underflows.
    pub fn sample(&self, rng: &mut dyn RngCore) -> Value {
        if self.lambda > 700.0 {
            // Normal approximation with continuity correction.
            let z = super::util::standard_normal(rng);
            let x = (self.lambda + self.lambda.sqrt() * z).round().max(0.0);
            return Value::Int(x as i64);
        }
        let mut k = 0_i64;
        let mut p = (-self.lambda).exp();
        let mut cdf = p;
        let u = uniform_unit(rng);
        while u > cdf && k < 10_000_000 {
            k += 1;
            p *= self.lambda / k as f64;
            cdf += p;
        }
        Value::Int(k)
    }

    /// Log probability `k·ln λ − λ − ln k!`.
    pub fn log_prob(&self, value: &Value) -> LogWeight {
        match value.as_int() {
            Ok(k) if k >= 0 => LogWeight::from_log(
                k as f64 * self.lambda.ln() - self.lambda - ln_factorial(k as u64),
            ),
            _ => LogWeight::ZERO,
        }
    }

    /// The support: all non-negative integers.
    pub fn support(&self) -> Support {
        Support::NonNegativeInts
    }
}

/// `ln k!`: an O(1) lookup for `k ≤ 64`, the log-gamma function above.
///
/// The table entries are seeded with exactly the formula they replace
/// (exact summation below 20, `ln_gamma(k + 1)` from 20 up), so cached
/// values are bit-identical to the direct O(k) evaluation this replaces
/// and scoring stays reproducible across the change.
pub(crate) fn ln_factorial(k: u64) -> f64 {
    const TABLE_LEN: usize = 65;
    static TABLE: std::sync::OnceLock<[f64; TABLE_LEN]> = std::sync::OnceLock::new();
    if (k as usize) < TABLE_LEN {
        let table = TABLE.get_or_init(|| {
            let mut t = [0.0; TABLE_LEN];
            for (k, slot) in t.iter_mut().enumerate() {
                *slot = if k < 20 {
                    (2..=k as u64).map(|i| (i as f64).ln()).sum()
                } else {
                    ln_gamma(k as f64 + 1.0)
                };
            }
            t
        });
        table[k as usize]
    } else {
        ln_gamma(k as f64 + 1.0)
    }
}

/// Log-gamma by the Lanczos approximation (g = 7, n = 9), accurate to
/// ~1e-13 on the positive reals.
pub(crate) fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn validates_rate() {
        assert!(Poisson::new(1.0).is_ok());
        assert!(Poisson::new(0.0).is_err());
        assert!(Poisson::new(-1.0).is_err());
        assert!(Poisson::new(f64::NAN).is_err());
    }

    #[test]
    fn pmf_sums_to_one() {
        let d = Poisson::new(3.5).unwrap();
        let total: f64 = (0..200).map(|k| d.log_prob(&Value::Int(k)).prob()).sum();
        assert!((total - 1.0).abs() < 1e-12, "sum {total}");
    }

    #[test]
    fn pmf_matches_closed_forms() {
        let d = Poisson::new(2.0).unwrap();
        // P(X=2) = λ² e^{-λ} / 2
        let expected = 4.0 * (-2.0f64).exp() / 2.0;
        assert!((d.log_prob(&Value::Int(2)).prob() - expected).abs() < 1e-12);
        assert!(d.log_prob(&Value::Int(-1)).is_zero());
        assert!(d.log_prob(&Value::Real(1.5)).is_zero());
    }

    #[test]
    fn sample_moments() {
        let d = Poisson::new(4.0).unwrap();
        let mut rng = StdRng::seed_from_u64(71);
        let n = 200_000;
        let (mut sum, mut sum_sq) = (0.0, 0.0);
        for _ in 0..n {
            let x = d.sample(&mut rng).as_int().unwrap() as f64;
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!((mean - 4.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        for k in 1..15u64 {
            let exact: f64 = (2..=k).map(|i| (i as f64).ln()).sum();
            assert!((ln_gamma(k as f64 + 1.0) - exact).abs() < 1e-10, "k = {k}");
        }
        // Γ(1/2) = √π
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
    }

    #[test]
    fn ln_factorial_table_matches_direct_formula_bitwise() {
        // Pin the table to the formula it replaced: every entry must be
        // bit-identical, not merely close.
        for k in 0..=64u64 {
            let direct: f64 = if k < 20 {
                (2..=k).map(|i| (i as f64).ln()).sum()
            } else {
                ln_gamma(k as f64 + 1.0)
            };
            assert_eq!(
                ln_factorial(k).to_bits(),
                direct.to_bits(),
                "k = {k}: {} vs {direct}",
                ln_factorial(k)
            );
        }
    }

    #[test]
    fn ln_factorial_tail_matches_ln_gamma() {
        for k in [65u64, 100, 1_000, 1_000_000] {
            let direct = ln_gamma(k as f64 + 1.0);
            assert_eq!(ln_factorial(k).to_bits(), direct.to_bits(), "k = {k}");
            assert!((ln_factorial(k) - direct).abs() < 1e-12);
        }
    }

    #[test]
    fn large_rate_uses_normal_approximation() {
        let d = Poisson::new(1000.0).unwrap();
        let mut rng = StdRng::seed_from_u64(72);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| d.sample(&mut rng).as_int().unwrap() as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - 1000.0).abs() < 2.0, "mean {mean}");
    }
}
