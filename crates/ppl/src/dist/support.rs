//! Distribution supports.
//!
//! Section 5.1 of the paper permits reusing a corresponding random choice
//! only when "the support of a random choice `i ∈ F_Q` in `u`" equals "the
//! support of `f(i)` in `t`". [`Support`] reifies supports so the forward
//! kernel can perform that check dynamically.

use crate::value::Value;

/// The support of a distribution: the set of values with positive
/// probability (or density).
#[derive(Debug, Clone, PartialEq)]
pub enum Support {
    /// The two booleans `{false, true}` (equivalently `{0, 1}`).
    Booleans,
    /// All non-negative integers `{0, 1, 2, …}` (countably infinite).
    NonNegativeInts,
    /// The inclusive integer range `lo..=hi`.
    IntRange {
        /// Smallest value in the support.
        lo: i64,
        /// Largest value in the support.
        hi: i64,
    },
    /// The whole real line.
    RealLine,
    /// The real interval `[lo, hi)`.
    RealInterval {
        /// Left endpoint (inclusive).
        lo: f64,
        /// Right endpoint (exclusive).
        hi: f64,
    },
}

impl Support {
    /// Whether this is a discrete (countable) support.
    pub fn is_discrete(&self) -> bool {
        matches!(
            self,
            Support::Booleans | Support::IntRange { .. } | Support::NonNegativeInts
        )
    }

    /// Whether `value` lies inside the support.
    pub fn contains(&self, value: &Value) -> bool {
        match self {
            Support::Booleans => match value {
                Value::Bool(_) => true,
                Value::Int(i) => *i == 0 || *i == 1,
                Value::Real(r) => *r == 0.0 || *r == 1.0,
                Value::Array(_) => false,
            },
            Support::NonNegativeInts => matches!(value.as_int(), Ok(i) if i >= 0),
            Support::IntRange { lo, hi } => match value.as_int() {
                Ok(i) => *lo <= i && i <= *hi,
                Err(_) => false,
            },
            Support::RealLine => value.as_real().map(f64::is_finite).unwrap_or(false),
            Support::RealInterval { lo, hi } => match value.as_real() {
                Ok(r) => *lo <= r && r < *hi,
                Err(_) => false,
            },
        }
    }

    /// Enumerates the support if it is finite and discrete.
    ///
    /// Returns `None` for continuous supports. The enumeration order is
    /// ascending.
    pub fn enumerate(&self) -> Option<Vec<Value>> {
        match self {
            Support::Booleans => Some(vec![Value::Bool(false), Value::Bool(true)]),
            Support::IntRange { lo, hi } => {
                if lo > hi {
                    return Some(Vec::new());
                }
                Some((*lo..=*hi).map(Value::Int).collect())
            }
            Support::NonNegativeInts | Support::RealLine | Support::RealInterval { .. } => None,
        }
    }

    /// Number of elements for finite discrete supports.
    pub fn cardinality(&self) -> Option<u64> {
        match self {
            Support::Booleans => Some(2),
            Support::IntRange { lo, hi } => {
                if lo > hi {
                    Some(0)
                } else {
                    Some((hi - lo) as u64 + 1)
                }
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn booleans_contain_zero_one() {
        let s = Support::Booleans;
        assert!(s.contains(&Value::Bool(true)));
        assert!(s.contains(&Value::Int(0)));
        assert!(s.contains(&Value::Real(1.0)));
        assert!(!s.contains(&Value::Int(2)));
        assert!(!s.contains(&Value::array(vec![])));
        assert!(s.is_discrete());
    }

    #[test]
    fn int_range_contains() {
        let s = Support::IntRange { lo: 1, hi: 6 };
        assert!(s.contains(&Value::Int(1)));
        assert!(s.contains(&Value::Int(6)));
        assert!(s.contains(&Value::Real(3.0)));
        assert!(!s.contains(&Value::Int(0)));
        assert!(!s.contains(&Value::Real(3.5)));
        assert_eq!(s.cardinality(), Some(6));
    }

    #[test]
    fn enumerate_finite() {
        assert_eq!(Support::Booleans.enumerate().unwrap().len(), 2);
        let vals = Support::IntRange { lo: -1, hi: 1 }.enumerate().unwrap();
        assert_eq!(vals, vec![Value::Int(-1), Value::Int(0), Value::Int(1)]);
        assert!(Support::RealLine.enumerate().is_none());
        assert!(Support::IntRange { lo: 2, hi: 1 }
            .enumerate()
            .unwrap()
            .is_empty());
    }

    #[test]
    fn real_supports() {
        assert!(Support::RealLine.contains(&Value::Real(-1e100)));
        assert!(!Support::RealLine.contains(&Value::Real(f64::INFINITY)));
        let s = Support::RealInterval { lo: 0.0, hi: 1.0 };
        assert!(s.contains(&Value::Real(0.0)));
        assert!(!s.contains(&Value::Real(1.0)));
        assert!(!s.is_discrete());
        assert_eq!(s.cardinality(), None);
    }

    #[test]
    fn support_equality_is_structural() {
        assert_eq!(
            Support::IntRange { lo: 0, hi: 5 },
            Support::IntRange { lo: 0, hi: 5 }
        );
        assert_ne!(
            Support::IntRange { lo: 0, hi: 5 },
            Support::IntRange { lo: 1, hi: 6 }
        );
    }
}
