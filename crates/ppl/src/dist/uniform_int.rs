//! Uniform distribution over an inclusive integer range — the paper's
//! `uniform(E1, E2)`.

use rand::RngCore;

use super::support::Support;
use super::util::uniform_below;
use crate::error::PplError;
use crate::logweight::LogWeight;
use crate::value::Value;

/// The uniform distribution on the integers `lo..=hi` — the paper's
/// `uniform(E1, E2)` which "selects an integer between E1 and E2 uniformly
/// at random".
///
/// # Examples
///
/// ```
/// use ppl::dist::UniformInt;
/// use ppl::Value;
/// let d = UniformInt::new(1, 6).unwrap();
/// assert!((d.log_prob(&Value::Int(4)).prob() - 1.0 / 6.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UniformInt {
    lo: i64,
    hi: i64,
}

impl UniformInt {
    /// Creates the uniform distribution on `lo..=hi`.
    ///
    /// # Errors
    ///
    /// Returns [`PplError::InvalidDistribution`] if `lo > hi`.
    pub fn new(lo: i64, hi: i64) -> Result<UniformInt, PplError> {
        if lo > hi {
            return Err(PplError::InvalidDistribution(format!(
                "uniform integer range is empty: [{lo}, {hi}]"
            )));
        }
        Ok(UniformInt { lo, hi })
    }

    /// Lower bound (inclusive).
    pub fn lo(&self) -> i64 {
        self.lo
    }

    /// Upper bound (inclusive).
    pub fn hi(&self) -> i64 {
        self.hi
    }

    /// Samples an integer uniformly from the range.
    pub fn sample(&self, rng: &mut dyn RngCore) -> Value {
        let n = (self.hi - self.lo) as u64 + 1;
        Value::Int(self.lo + uniform_below(rng, n) as i64)
    }

    /// Log probability of `value` (zero outside the range).
    pub fn log_prob(&self, value: &Value) -> LogWeight {
        if self.support().contains(value) {
            let n = (self.hi - self.lo) as f64 + 1.0;
            LogWeight::from_prob(1.0 / n)
        } else {
            LogWeight::ZERO
        }
    }

    /// The support `lo..=hi`.
    pub fn support(&self) -> Support {
        Support::IntRange {
            lo: self.lo,
            hi: self.hi,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn validates_range() {
        assert!(UniformInt::new(0, 0).is_ok());
        assert!(UniformInt::new(5, 4).is_err());
        assert!(UniformInt::new(-5, -2).is_ok());
    }

    #[test]
    fn log_prob_is_reciprocal_cardinality() {
        let d = UniformInt::new(-5, -2).unwrap();
        assert!((d.log_prob(&Value::Int(-3)).prob() - 0.25).abs() < 1e-12);
        assert!(d.log_prob(&Value::Int(0)).is_zero());
        assert!(d.log_prob(&Value::Real(-2.5)).is_zero());
        // An integral real counts.
        assert!((d.log_prob(&Value::Real(-2.0)).prob() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn samples_cover_range_uniformly() {
        let d = UniformInt::new(1, 6).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 6];
        for _ in 0..60_000 {
            let v = d.sample(&mut rng).as_int().unwrap();
            counts[(v - 1) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as i64 - 10_000).abs() < 600, "counts {counts:?}");
        }
    }

    #[test]
    fn singleton_range() {
        let d = UniformInt::new(7, 7).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        assert_eq!(d.sample(&mut rng), Value::Int(7));
        assert_eq!(d.log_prob(&Value::Int(7)), LogWeight::ONE);
    }
}
