//! Continuous uniform distribution on a half-open real interval.

use rand::RngCore;

use super::support::Support;
use super::util::uniform_unit;
use crate::error::PplError;
use crate::logweight::LogWeight;
use crate::value::Value;

/// The continuous uniform distribution on `[lo, hi)`.
///
/// # Examples
///
/// ```
/// use ppl::dist::UniformReal;
/// use ppl::Value;
/// let d = UniformReal::new(0.0, 4.0).unwrap();
/// assert!((d.log_prob(&Value::Real(1.0)).prob() - 0.25).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct UniformReal {
    lo: f64,
    hi: f64,
}

impl UniformReal {
    /// Creates the uniform distribution on `[lo, hi)`.
    ///
    /// # Errors
    ///
    /// Returns [`PplError::InvalidDistribution`] unless `lo < hi` and both
    /// bounds are finite.
    pub fn new(lo: f64, hi: f64) -> Result<UniformReal, PplError> {
        if !lo.is_finite() || !hi.is_finite() || lo >= hi {
            return Err(PplError::InvalidDistribution(format!(
                "uniform real interval is invalid: [{lo}, {hi})"
            )));
        }
        Ok(UniformReal { lo, hi })
    }

    /// Left endpoint.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Right endpoint.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Samples a real uniformly.
    pub fn sample(&self, rng: &mut dyn RngCore) -> Value {
        Value::Real(self.lo + (self.hi - self.lo) * uniform_unit(rng))
    }

    /// Log density of `value` (zero outside the interval).
    pub fn log_prob(&self, value: &Value) -> LogWeight {
        if self.support().contains(value) {
            LogWeight::from_log(-(self.hi - self.lo).ln())
        } else {
            LogWeight::ZERO
        }
    }

    /// The support `[lo, hi)`.
    pub fn support(&self) -> Support {
        Support::RealInterval {
            lo: self.lo,
            hi: self.hi,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn validates_interval() {
        assert!(UniformReal::new(0.0, 1.0).is_ok());
        assert!(UniformReal::new(1.0, 1.0).is_err());
        assert!(UniformReal::new(2.0, 1.0).is_err());
        assert!(UniformReal::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn density_is_reciprocal_length() {
        let d = UniformReal::new(-2.0, 2.0).unwrap();
        assert!((d.log_prob(&Value::Real(0.0)).prob() - 0.25).abs() < 1e-12);
        assert!(d.log_prob(&Value::Real(2.0)).is_zero());
        assert!(d.log_prob(&Value::Real(-2.5)).is_zero());
    }

    #[test]
    fn samples_stay_in_interval() {
        let d = UniformReal::new(3.0, 5.0).unwrap();
        let mut rng = StdRng::seed_from_u64(41);
        let mut sum = 0.0;
        let n = 100_000;
        for _ in 0..n {
            let x = d.sample(&mut rng).as_real().unwrap();
            assert!((3.0..5.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - 4.0).abs() < 0.01);
    }
}
