//! Low-level sampling utilities over `RngCore`.
//!
//! All samplers in this crate take `&mut dyn RngCore` so that handlers can
//! own heterogeneous RNGs behind trait objects. These helpers implement
//! unbiased primitives directly on the 64-bit output stream.

use rand::RngCore;

/// A uniform draw from `[0, 1)` with 53 bits of precision.
pub fn uniform_unit(rng: &mut dyn RngCore) -> f64 {
    // Take the top 53 bits: the standard way to fill a double's mantissa.
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A uniform draw from `[0, 1)` guaranteed to be strictly positive, for use
/// inside logarithms.
pub fn uniform_positive(rng: &mut dyn RngCore) -> f64 {
    loop {
        let u = uniform_unit(rng);
        if u > 0.0 {
            return u;
        }
    }
}

/// An unbiased uniform draw from `0..n` via rejection of the biased tail.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn uniform_below(rng: &mut dyn RngCore, n: u64) -> u64 {
    assert!(n > 0, "uniform_below requires n > 0");
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    // Reject draws from the final partial block of size `u64::MAX % n + 1`.
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

/// A standard normal draw via the Box–Muller transform.
pub fn standard_normal(rng: &mut dyn RngCore) -> f64 {
    let u1 = uniform_positive(rng);
    let u2 = uniform_unit(rng);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Natural log of the standard normal density at `z`.
pub fn standard_normal_log_pdf(z: f64) -> f64 {
    -0.5 * z * z - 0.5 * (std::f64::consts::TAU).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_unit_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let u = uniform_unit(&mut rng);
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_below_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0u32; 5];
        for _ in 0..50_000 {
            counts[uniform_below(&mut rng, 5) as usize] += 1;
        }
        for &c in &counts {
            // each bucket expects 10_000; allow 5% deviation
            assert!((c as i64 - 10_000).abs() < 500, "counts: {counts:?}");
        }
    }

    #[test]
    fn uniform_below_power_of_two() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(uniform_below(&mut rng, 8) < 8);
        }
    }

    #[test]
    #[should_panic]
    fn uniform_below_zero_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        uniform_below(&mut rng, 0);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 200_000;
        let (mut sum, mut sum_sq) = (0.0, 0.0);
        for _ in 0..n {
            let z = standard_normal(&mut rng);
            sum += z;
            sum_sq += z * z;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn log_pdf_matches_known_value() {
        // N(0,1) density at 0 is 1/sqrt(2*pi)
        let expected = (1.0 / (std::f64::consts::TAU).sqrt()).ln();
        assert!((standard_normal_log_pdf(0.0) - expected).abs() < 1e-12);
    }
}
