//! The effect-handler interface between probabilistic programs and
//! inference.
//!
//! Runtime systems following the lightweight transformational-compilation
//! design of [Wingate et al. 2011] (which the paper's Section 7.1 embedding
//! uses) "run the program end-to-end and score each random choice". Here a
//! program is anything implementing [`Model`], and each way of running it —
//! prior simulation, trace scoring, constrained replay, forward translation,
//! MH regeneration, exact enumeration — is a [`Handler`].

use crate::address::Address;
use crate::dist::Dist;
use crate::error::PplError;
use crate::value::Value;

/// The two probabilistic effects a program can perform.
///
/// Implementations decide what `sample` returns (a fresh draw, a replayed
/// value, a translated value, …) and how `observe` is accounted.
pub trait Handler {
    /// Requests a value for the random choice at `addr` with distribution
    /// `dist`.
    ///
    /// # Errors
    ///
    /// Handlers report address collisions, missing constraints, and similar
    /// conditions as [`PplError`]s.
    fn sample(&mut self, addr: Address, dist: Dist) -> Result<Value, PplError>;

    /// Records the observation `observe(dist == value)` at `addr`.
    ///
    /// # Errors
    ///
    /// Handlers report address collisions as [`PplError`]s.
    fn observe(&mut self, addr: Address, dist: Dist, value: Value) -> Result<(), PplError>;
}

/// A probabilistic program: anything that can execute against a handler.
///
/// Both the AST interpreter ([`crate::ast::Program`]) and embedded Rust
/// closures implement this trait, so every inference algorithm in the
/// workspace works for both program representations.
///
/// # Examples
///
/// ```
/// use ppl::{Model, Handler, Value, PplError, addr};
/// use ppl::dist::Dist;
/// use ppl::handlers::PriorSampler;
/// use rand::SeedableRng;
///
/// let model = |h: &mut dyn Handler| -> Result<Value, PplError> {
///     let x = h.sample(addr!["x"], Dist::flip(0.5))?;
///     Ok(x)
/// };
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut sampler = PriorSampler::new(&mut rng);
/// let value = model.exec(&mut sampler)?;
/// let trace = sampler.into_trace();
/// assert_eq!(trace.len(), 1);
/// assert!(matches!(value, Value::Bool(_)));
/// # Ok::<(), PplError>(())
/// ```
pub trait Model {
    /// Runs the program, performing its probabilistic effects against
    /// `handler`, and returns the program's return value.
    ///
    /// # Errors
    ///
    /// Propagates handler errors and evaluation errors.
    fn exec(&self, handler: &mut dyn Handler) -> Result<Value, PplError>;
}

impl<F> Model for F
where
    F: Fn(&mut dyn Handler) -> Result<Value, PplError>,
{
    fn exec(&self, handler: &mut dyn Handler) -> Result<Value, PplError> {
        self(handler)
    }
}

impl Model for Box<dyn Model + Send + Sync> {
    fn exec(&self, handler: &mut dyn Handler) -> Result<Value, PplError> {
        (**self).exec(handler)
    }
}

impl<M: Model + ?Sized> Model for std::sync::Arc<M> {
    fn exec(&self, handler: &mut dyn Handler) -> Result<Value, PplError> {
        (**self).exec(handler)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr;
    use crate::handlers::PriorSampler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn coin(h: &mut dyn Handler) -> Result<Value, PplError> {
        h.sample(addr!["c"], Dist::flip(0.5))
    }

    #[test]
    fn closures_are_models() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut handler = PriorSampler::new(&mut rng);
        let v = coin.exec(&mut handler).unwrap();
        assert!(matches!(v, Value::Bool(_)));
    }

    #[test]
    fn arcs_are_models() {
        let model = |h: &mut dyn Handler| coin(h);
        let mut rng = StdRng::seed_from_u64(2);
        let mut handler = PriorSampler::new(&mut rng);
        let arc: Arc<dyn Model + Send + Sync> = Arc::new(model);
        arc.exec(&mut handler).unwrap();
        arc.exec(&mut handler).unwrap_err(); // address collision on reuse
    }

    #[test]
    fn boxed_models_work() {
        let boxed: Box<dyn Model + Send + Sync> =
            Box::new(|h: &mut dyn Handler| h.sample(addr!["x"], Dist::flip(1.0)));
        let mut rng = StdRng::seed_from_u64(3);
        let mut handler = PriorSampler::new(&mut rng);
        assert_eq!(boxed.exec(&mut handler).unwrap(), Value::Bool(true));
    }
}
