//! Exact enumeration of finite discrete programs.
//!
//! Enumerates every trace `t ∈ T_P` of a program whose random choices all
//! have finite support, yielding the exact unnormalized probabilities
//! `P̃r[t ∼ P]`, the normalizing constant `Z_P`, and posterior
//! expectations. Used as ground truth throughout the test suite and for
//! computing the trace translator error of Section 5.3 exactly.

use crate::address::Address;
use crate::dist::Dist;
use crate::effects::{Handler, Model};
use crate::error::PplError;
use crate::logweight::log_sum_exp;
use crate::trace::Trace;
use crate::value::Value;

/// Default cap on the number of complete traces enumerated before giving
/// up.
pub const DEFAULT_TRACE_LIMIT: usize = 1_000_000;

/// The result of exactly enumerating a program: all traces with their
/// unnormalized probabilities.
#[derive(Debug, Clone)]
pub struct Enumeration {
    traces: Vec<Trace>,
    log_z: f64,
}

impl Enumeration {
    /// Exhaustively enumerates `model` with the default trace limit.
    ///
    /// # Errors
    ///
    /// Returns [`PplError::NonEnumerable`] if the model makes a choice with
    /// non-finite support, and [`PplError::FuelExhausted`] if the number of
    /// traces exceeds the limit.
    pub fn run(model: &dyn Model) -> Result<Enumeration, PplError> {
        Self::run_with_limit(model, DEFAULT_TRACE_LIMIT)
    }

    /// Exhaustively enumerates `model`, aborting beyond `limit` traces.
    ///
    /// # Errors
    ///
    /// See [`Enumeration::run`].
    pub fn run_with_limit(model: &dyn Model, limit: usize) -> Result<Enumeration, PplError> {
        let mut traces = Vec::new();
        // Work items are prefixes of choice-value sequences (in evaluation
        // order) that still need their first full execution.
        let mut work: Vec<Vec<Value>> = vec![Vec::new()];
        while let Some(prefix) = work.pop() {
            if traces.len() >= limit {
                return Err(PplError::FuelExhausted {
                    budget: limit as u64,
                });
            }
            let mut handler = EnumHandler {
                prefix: &prefix,
                taken: Vec::new(),
                branch_supports: Vec::new(),
                trace: Trace::new(),
            };
            let value = model.exec(&mut handler)?;
            let EnumHandler {
                taken,
                branch_supports,
                mut trace,
                ..
            } = handler;
            trace.set_return_value(value);
            // Schedule the untried alternatives at every fresh branch point.
            for (pos, support) in branch_supports {
                for alt in support.into_iter().skip(1) {
                    let mut new_prefix = taken[..pos].to_vec();
                    new_prefix.push(alt);
                    work.push(new_prefix);
                }
            }
            traces.push(trace);
        }
        let log_z = log_sum_exp(&traces.iter().map(|t| t.score().log()).collect::<Vec<_>>());
        Ok(Enumeration { traces, log_z })
    }

    /// The log normalizing constant `log Z_P`.
    pub fn log_z(&self) -> f64 {
        self.log_z
    }

    /// The normalizing constant `Z_P` (the probability of satisfying all
    /// observations).
    pub fn z(&self) -> f64 {
        self.log_z.exp()
    }

    /// All enumerated traces (including probability-zero ones).
    pub fn traces(&self) -> &[Trace] {
        &self.traces
    }

    /// Iterates over `(trace, posterior probability)` pairs, skipping
    /// zero-probability traces.
    pub fn posterior(&self) -> impl Iterator<Item = (&Trace, f64)> {
        let log_z = self.log_z;
        self.traces.iter().filter_map(move |t| {
            let s = t.score().log();
            if s == f64::NEG_INFINITY {
                None
            } else {
                Some((t, (s - log_z).exp()))
            }
        })
    }

    /// Exact posterior expectation `E_{t ∼ P}[f(t)]`.
    pub fn expectation(&self, mut f: impl FnMut(&Trace) -> f64) -> f64 {
        self.posterior().map(|(t, p)| p * f(t)).sum()
    }

    /// Exact posterior probability of an event.
    pub fn probability(&self, mut event: impl FnMut(&Trace) -> bool) -> f64 {
        self.expectation(|t| if event(t) { 1.0 } else { 0.0 })
    }

    /// Exact *prior* probability of an event: observations are ignored,
    /// choices alone weight the traces. This is what the "Prior" bars of
    /// Figure 1 show.
    pub fn prior_probability(&self, mut event: impl FnMut(&Trace) -> bool) -> f64 {
        self.traces
            .iter()
            .filter(|t| event(t))
            .map(|t| t.choice_score().prob())
            .sum()
    }

    /// Exact posterior marginal of the choice at `addr`: a list of
    /// `(value, probability)` pairs in first-seen order. Traces lacking the
    /// address are skipped (their mass is not counted).
    pub fn marginal(&self, addr: &Address) -> Vec<(Value, f64)> {
        let mut out: Vec<(Value, f64)> = Vec::new();
        for (t, p) in self.posterior() {
            if let Some(v) = t.value(addr) {
                if let Some(slot) = out.iter_mut().find(|(u, _)| u.num_eq(v)) {
                    slot.1 += p;
                } else {
                    out.push((v.clone(), p));
                }
            }
        }
        out
    }

    /// Exact posterior distribution over return values.
    pub fn return_distribution(&self) -> Vec<(Value, f64)> {
        let mut out: Vec<(Value, f64)> = Vec::new();
        for (t, p) in self.posterior() {
            if let Some(v) = t.return_value() {
                if let Some(slot) = out.iter_mut().find(|(u, _)| u.num_eq(v)) {
                    slot.1 += p;
                } else {
                    out.push((v.clone(), p));
                }
            }
        }
        out
    }
}

struct EnumHandler<'a> {
    prefix: &'a [Value],
    taken: Vec<Value>,
    /// `(position, full support)` for every choice made beyond the prefix.
    branch_supports: Vec<(usize, Vec<Value>)>,
    trace: Trace,
}

impl Handler for EnumHandler<'_> {
    fn sample(&mut self, addr: Address, dist: Dist) -> Result<Value, PplError> {
        let pos = self.taken.len();
        let value = if pos < self.prefix.len() {
            self.prefix[pos].clone()
        } else {
            let support = dist
                .enumerate_support()
                .ok_or(PplError::NonEnumerable(addr.clone()))?;
            if support.is_empty() {
                return Err(PplError::NonEnumerable(addr));
            }
            let first = support[0].clone();
            self.branch_supports.push((pos, support));
            first
        };
        let log_prob = dist.log_prob(&value);
        self.taken.push(value.clone());
        self.trace
            .record_choice(addr, value.clone(), dist, log_prob)?;
        Ok(value)
    }

    fn observe(&mut self, addr: Address, dist: Dist, value: Value) -> Result<(), PplError> {
        let log_prob = dist.log_prob(&value);
        self.trace.record_observation(addr, value, dist, log_prob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr;
    use crate::parser::parse;

    #[test]
    fn enumerates_two_flips() {
        let model = |h: &mut dyn Handler| {
            let a = h.sample(addr!["a"], Dist::flip(0.5))?;
            let _b = h.sample(addr!["b"], Dist::flip(0.5))?;
            Ok(a)
        };
        let e = Enumeration::run(&model).unwrap();
        assert_eq!(e.traces().len(), 4);
        assert!((e.z() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn example1_normalizing_constant_is_0_7() {
        // Figure 3 / Example 1: Z_P = 0.7.
        let src = r#"
            a = 1;
            b = flip(a / 3) @ b;
            if a < 2 { c = uniform(1, 6) @ c; } else { c = uniform(6, 10) @ c; }
            d = flip(b / 2) @ d;
            observe(flip(1 / 5) @ obs == d);
            return c;
        "#;
        let p = parse(src).unwrap();
        let e = Enumeration::run(&p).unwrap();
        assert!((e.z() - 0.7).abs() < 1e-12, "Z = {}", e.z());
        // 2 values of b * 6 of c * 2 of d = 24 traces.
        assert_eq!(e.traces().len(), 24);
        // Normalized probability of [b -> 1, c -> 4, d -> 1]:
        let target = (1.0 / 3.0) * (1.0 / 6.0) * 0.5 * 0.2 / 0.7;
        let prob = e.probability(|t| {
            t.value(&addr!["b"]).unwrap().num_eq(&Value::Bool(true))
                && t.value(&addr!["c"]).unwrap().num_eq(&Value::Int(4))
                && t.value(&addr!["d"]).unwrap().num_eq(&Value::Bool(true))
        });
        assert!((prob - target).abs() < 1e-12);
    }

    #[test]
    fn branching_support_enumeration() {
        // Choices guard which later choices exist.
        let model = |h: &mut dyn Handler| {
            let a = h.sample(addr!["a"], Dist::flip(0.5))?;
            if a.truthy()? {
                h.sample(addr!["b"], Dist::uniform_int(0, 2))?;
            }
            Ok(a)
        };
        let e = Enumeration::run(&model).unwrap();
        // a=false (1 trace) + a=true with 3 values of b.
        assert_eq!(e.traces().len(), 4);
        assert!((e.z() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn continuous_choice_is_an_error() {
        let model = |h: &mut dyn Handler| h.sample(addr!["x"], Dist::normal(0.0, 1.0));
        assert!(matches!(
            Enumeration::run(&model),
            Err(PplError::NonEnumerable(_))
        ));
    }

    #[test]
    fn limit_aborts_unbounded_models() {
        // A geometric loop enumerates forever; the limit must fire.
        let model = |h: &mut dyn Handler| {
            let mut n = 0_i64;
            loop {
                let keep = h.sample(addr!["t", n], Dist::flip(0.5))?;
                if !keep.truthy()? {
                    return Ok(Value::Int(n));
                }
                n += 1;
            }
        };
        assert!(matches!(
            Enumeration::run_with_limit(&model, 100),
            Err(PplError::FuelExhausted { .. })
        ));
    }

    #[test]
    fn marginal_and_prior_differ_under_observation() {
        // x ~ flip(0.5); observe(flip(x ? 0.9 : 0.1) == 1)
        let model = |h: &mut dyn Handler| {
            let x = h.sample(addr!["x"], Dist::flip(0.5))?;
            let p = if x.truthy()? { 0.9 } else { 0.1 };
            h.observe(addr!["o"], Dist::flip(p), Value::Bool(true))?;
            Ok(x)
        };
        let e = Enumeration::run(&model).unwrap();
        let prior = e.prior_probability(|t| t.value(&addr!["x"]).unwrap().truthy().unwrap());
        assert!((prior - 0.5).abs() < 1e-12);
        let posterior = e.probability(|t| t.value(&addr!["x"]).unwrap().truthy().unwrap());
        assert!((posterior - 0.9).abs() < 1e-12);
        let marg = e.marginal(&addr!["x"]);
        assert_eq!(marg.len(), 2);
        let ret = e.return_distribution();
        let p_true: f64 = ret
            .iter()
            .filter(|(v, _)| v.num_eq(&Value::Bool(true)))
            .map(|(_, p)| *p)
            .sum();
        assert!((p_true - 0.9).abs() < 1e-12);
    }

    #[test]
    fn zero_probability_traces_kept_but_skipped_in_posterior() {
        let model = |h: &mut dyn Handler| {
            let x = h.sample(addr!["x"], Dist::flip(0.5))?;
            let p = if x.truthy()? { 1.0 } else { 0.0 };
            h.observe(addr!["o"], Dist::flip(p), Value::Bool(true))?;
            Ok(x)
        };
        let e = Enumeration::run(&model).unwrap();
        assert_eq!(e.traces().len(), 2);
        assert_eq!(e.posterior().count(), 1);
        assert!((e.z() - 0.5).abs() < 1e-12);
    }
}
