//! Error types shared across the workspace.

use std::fmt;

use crate::address::Address;

/// Errors raised while evaluating, scoring, or translating probabilistic
/// programs.
#[derive(Debug, Clone, PartialEq)]
pub enum PplError {
    /// A value had the wrong type for an operation.
    Type {
        /// The type the operation required.
        expected: &'static str,
        /// The type that was found.
        found: &'static str,
        /// Where the mismatch happened.
        context: String,
    },
    /// A variable was read before being assigned.
    UnboundVariable(String),
    /// An array index was out of bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: i64,
        /// The array length.
        len: usize,
    },
    /// A distribution was constructed with invalid parameters.
    InvalidDistribution(String),
    /// Two random choices or observations were recorded at the same address.
    AddressCollision(Address),
    /// A replay or scoring handler needed a choice that the trace lacks.
    MissingChoice(Address),
    /// A constrained value lies outside the distribution's support.
    OutsideSupport {
        /// The address of the choice.
        address: Address,
        /// Rendered value.
        value: String,
    },
    /// Division by zero (or modulo by zero).
    DivisionByZero,
    /// A loop exceeded the interpreter's step budget.
    FuelExhausted {
        /// The budget that was exceeded.
        budget: u64,
    },
    /// Exact enumeration met a choice with non-finite support.
    NonEnumerable(Address),
    /// Any other error, carrying a message.
    Other(String),
}

impl PplError {
    /// Convenience constructor for [`PplError::Type`].
    pub fn type_error(expected: &'static str, found: &'static str, context: &str) -> PplError {
        PplError::Type {
            expected,
            found,
            context: context.to_string(),
        }
    }
}

impl fmt::Display for PplError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PplError::Type {
                expected,
                found,
                context,
            } => write!(f, "expected {expected} but found {found} in {context}"),
            PplError::UnboundVariable(name) => write!(f, "unbound variable `{name}`"),
            PplError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for array of length {len}")
            }
            PplError::InvalidDistribution(msg) => write!(f, "invalid distribution: {msg}"),
            PplError::AddressCollision(addr) => {
                write!(
                    f,
                    "address `{addr}` was used more than once in a single execution"
                )
            }
            PplError::MissingChoice(addr) => {
                write!(f, "trace has no choice at address `{addr}`")
            }
            PplError::OutsideSupport { address, value } => {
                write!(
                    f,
                    "value {value} at `{address}` lies outside the distribution support"
                )
            }
            PplError::DivisionByZero => write!(f, "division by zero"),
            PplError::FuelExhausted { budget } => {
                write!(f, "execution exceeded the step budget of {budget}")
            }
            PplError::NonEnumerable(addr) => {
                write!(
                    f,
                    "choice at `{addr}` has non-finite support; exact enumeration impossible"
                )
            }
            PplError::Other(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for PplError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = PplError::type_error("real", "array", "number");
        assert_eq!(e.to_string(), "expected real but found array in number");
        let e = PplError::MissingChoice(addr!["x", 2]);
        assert!(e.to_string().contains("x/2"));
        let e = PplError::FuelExhausted { budget: 10 };
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_error<E: std::error::Error + Send + Sync>(_e: E) {}
        takes_error(PplError::DivisionByZero);
    }
}
