//! A fast, non-cryptographic hasher for hot-path indices.
//!
//! The standard library's default hasher (SipHash-1-3) is keyed and
//! DoS-resistant, which trace indices don't need: address keys are
//! program-derived, not attacker-controlled, and every translate/replay
//! step performs several index probes per random choice. This module
//! provides an `FxHash`-style multiply-xor hasher (the scheme used by the
//! Firefox and rustc hash maps) that hashes a word in a couple of cycles,
//! plus map/set type aliases keyed on it.
//!
//! Not for use where collision resistance against adversarial keys
//! matters — only for internal indices keyed on addresses, interned ids,
//! and small strings.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The multiplicative constant of the Fx scheme (a 64-bit value derived
/// from pi with good bit-mixing behavior).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast multiply-xor hasher: each word is folded in with
/// `rotate-left(5) ⊕ word` followed by a wrapping multiply.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0_u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0_u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            // Fold the length in so "ab\0" and "ab" differ.
            self.add_to_hash(u64::from_le_bytes(buf) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// A [`std::hash::BuildHasher`] producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the fast hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the fast hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(bytes: &[u8]) -> u64 {
        let mut h = FxHasher::default();
        h.write(bytes);
        h.finish()
    }

    #[test]
    fn distinct_inputs_hash_differently() {
        // Smoke test over short strings: no collisions in a tiny corpus.
        let corpus: Vec<String> = (0..200)
            .map(|i| format!("addr_{i}"))
            .chain((0..200).map(|i| format!("{i}")))
            .collect();
        let hashes: FxHashSet<u64> = corpus.iter().map(|s| hash_of(s.as_bytes())).collect();
        assert_eq!(hashes.len(), corpus.len());
    }

    #[test]
    fn prefix_and_length_sensitivity() {
        assert_ne!(hash_of(b"ab"), hash_of(b"ab\0"));
        assert_ne!(hash_of(b""), hash_of(b"\0"));
        assert_ne!(hash_of(b"12345678"), hash_of(b"123456789"));
    }

    #[test]
    fn hashing_is_deterministic() {
        assert_eq!(hash_of(b"state/3"), hash_of(b"state/3"));
        let mut a = FxHasher::default();
        a.write_u64(17);
        let mut b = FxHasher::default();
        b.write_u64(17);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn map_alias_works() {
        let mut m: FxHashMap<String, i32> = FxHashMap::default();
        m.insert("x".to_string(), 1);
        m.insert("y".to_string(), 2);
        assert_eq!(m.get("x"), Some(&1));
        assert_eq!(m.len(), 2);
    }
}
