//! Generative combinators: address scoping and plates.
//!
//! Larger models compose smaller ones. Because inference semantics flow
//! through the [`Handler`] interface, composition only needs *address
//! hygiene*: a sub-model invoked twice must record its choices under
//! distinct prefixes. [`scope`] runs any model under a prefixed handler;
//! [`Plate`] replicates a component model over an index range (the
//! "plate" of graphical-model notation), which is how the paper's
//! evaluation models loop over data points.

use crate::address::Address;
use crate::dist::Dist;
use crate::effects::{Handler, Model};
use crate::error::PplError;
use crate::value::Value;

/// A handler view that prefixes every address with a fixed scope.
pub struct ScopedHandler<'a> {
    inner: &'a mut dyn Handler,
    prefix: Address,
}

impl std::fmt::Debug for ScopedHandler<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScopedHandler")
            .field("prefix", &self.prefix)
            .finish_non_exhaustive()
    }
}

impl<'a> ScopedHandler<'a> {
    /// Wraps `inner`, prefixing all addresses with `prefix`.
    pub fn new(inner: &'a mut dyn Handler, prefix: Address) -> ScopedHandler<'a> {
        ScopedHandler { inner, prefix }
    }
}

impl Handler for ScopedHandler<'_> {
    fn sample(&mut self, addr: Address, dist: Dist) -> Result<Value, PplError> {
        self.inner.sample(self.prefix.concat(&addr), dist)
    }

    fn observe(&mut self, addr: Address, dist: Dist, value: Value) -> Result<(), PplError> {
        self.inner.observe(self.prefix.concat(&addr), dist, value)
    }
}

/// Runs `model` against `handler` with all its addresses prefixed by
/// `prefix`.
///
/// # Errors
///
/// Propagates the model's errors.
///
/// # Examples
///
/// ```
/// use ppl::gen::scope;
/// use ppl::handlers::simulate;
/// use ppl::{addr, Handler, PplError, Value};
/// use ppl::dist::Dist;
/// use rand::SeedableRng;
///
/// let coin = |h: &mut dyn Handler| h.sample(addr!["c"], Dist::flip(0.5));
/// let pair = move |h: &mut dyn Handler| -> Result<Value, PplError> {
///     let a = scope(h, addr!["first"], &coin)?;
///     let b = scope(h, addr!["second"], &coin)?;
///     Ok(Value::Bool(a.truthy()? && b.truthy()?))
/// };
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let t = simulate(&pair, &mut rng)?;
/// assert!(t.has_choice(&addr!["first", "c"]));
/// assert!(t.has_choice(&addr!["second", "c"]));
/// # Ok::<(), PplError>(())
/// ```
pub fn scope(
    handler: &mut dyn Handler,
    prefix: Address,
    model: &dyn Model,
) -> Result<Value, PplError> {
    let mut scoped = ScopedHandler::new(handler, prefix);
    model.exec(&mut scoped)
}

/// A plate: `count` independent applications of a component model, each
/// under the scope `name/i`, returning the array of component results.
///
/// # Examples
///
/// ```
/// use ppl::gen::Plate;
/// use ppl::handlers::simulate;
/// use ppl::{addr, Handler, Model, PplError};
/// use ppl::dist::Dist;
/// use rand::SeedableRng;
///
/// let coin = |h: &mut dyn Handler| h.sample(addr!["c"], Dist::flip(0.5));
/// let plate = Plate::new("flips", 3, coin);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let t = simulate(&plate, &mut rng)?;
/// assert_eq!(t.len(), 3);
/// assert!(t.has_choice(&addr!["flips", 2, "c"]));
/// # Ok::<(), PplError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Plate<M> {
    name: String,
    count: usize,
    component: M,
}

impl<M: Model> Plate<M> {
    /// Creates a plate replicating `component` `count` times under
    /// `name/i`.
    pub fn new(name: &str, count: usize, component: M) -> Plate<M> {
        Plate {
            name: name.to_string(),
            count,
            component,
        }
    }

    /// The replication count.
    pub fn count(&self) -> usize {
        self.count
    }
}

impl<M: Model> Model for Plate<M> {
    fn exec(&self, handler: &mut dyn Handler) -> Result<Value, PplError> {
        let base = Address::from(self.name.as_str());
        let mut results = Vec::with_capacity(self.count);
        for i in 0..self.count {
            let prefix = base.child(i);
            results.push(scope(handler, prefix, &self.component)?);
        }
        Ok(Value::array(results))
    }
}

/// Two models run in sequence under distinct scopes, returning the pair
/// as a two-element array.
#[derive(Debug, Clone)]
pub struct Pair<A, B> {
    first_name: String,
    first: A,
    second_name: String,
    second: B,
}

impl<A: Model, B: Model> Pair<A, B> {
    /// Creates the composition.
    pub fn new(first_name: &str, first: A, second_name: &str, second: B) -> Pair<A, B> {
        Pair {
            first_name: first_name.to_string(),
            first,
            second_name: second_name.to_string(),
            second,
        }
    }
}

impl<A: Model, B: Model> Model for Pair<A, B> {
    fn exec(&self, handler: &mut dyn Handler) -> Result<Value, PplError> {
        let a = scope(
            handler,
            Address::from(self.first_name.as_str()),
            &self.first,
        )?;
        let b = scope(
            handler,
            Address::from(self.second_name.as_str()),
            &self.second,
        )?;
        Ok(Value::array(vec![a, b]))
    }
}

/// A Markov combinator: threads a state through `count` applications of
/// a kernel model, each under the scope `name/i`.
///
/// The kernel receives the previous state through a caller-supplied
/// closure that builds the step model from it, and each step's return
/// value becomes the next state. The first-order HMM of Listing 3 is
/// exactly this shape.
///
/// # Examples
///
/// ```
/// use ppl::gen::Unfold;
/// use ppl::handlers::simulate;
/// use ppl::{addr, Handler, PplError, Value};
/// use ppl::dist::Dist;
/// use rand::SeedableRng;
///
/// // A random walk on the integers 0..10.
/// let walk = Unfold::new("step", 5, Value::Int(5), |state: &Value| {
///     let here = state.as_int().unwrap();
///     move |h: &mut dyn Handler| {
///         let up = h.sample(addr!["up"], Dist::flip(0.5))?;
///         Ok(Value::Int((here + if up.truthy()? { 1 } else { -1 }).clamp(0, 10)))
///     }
/// });
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let t = simulate(&walk, &mut rng)?;
/// assert_eq!(t.len(), 5);
/// assert!(t.has_choice(&addr!["step", 4, "up"]));
/// # Ok::<(), PplError>(())
/// ```
pub struct Unfold<F> {
    name: String,
    count: usize,
    initial: Value,
    kernel: F,
}

impl<F> std::fmt::Debug for Unfold<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Unfold")
            .field("name", &self.name)
            .field("count", &self.count)
            .field("initial", &self.initial)
            .finish_non_exhaustive()
    }
}

impl<F, M> Unfold<F>
where
    F: Fn(&Value) -> M,
    M: Model,
{
    /// Creates the combinator: `count` steps named `name/i`, starting
    /// from `initial`.
    pub fn new(name: &str, count: usize, initial: Value, kernel: F) -> Unfold<F> {
        Unfold {
            name: name.to_string(),
            count,
            initial,
            kernel,
        }
    }
}

impl<F, M> Model for Unfold<F>
where
    F: Fn(&Value) -> M,
    M: Model,
{
    fn exec(&self, handler: &mut dyn Handler) -> Result<Value, PplError> {
        let base = Address::from(self.name.as_str());
        let mut state = self.initial.clone();
        let mut states = Vec::with_capacity(self.count);
        for i in 0..self.count {
            let step = (self.kernel)(&state);
            state = scope(handler, base.child(i), &step)?;
            states.push(state.clone());
        }
        Ok(Value::array(states))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handlers::{score, simulate};
    use crate::{addr, Enumeration};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn coin(h: &mut dyn Handler) -> Result<Value, PplError> {
        h.sample(addr!["c"], Dist::flip(0.4))
    }

    #[test]
    fn plate_replicates_without_collisions() {
        let plate = Plate::new("p", 5, coin);
        let mut rng = StdRng::seed_from_u64(1);
        let t = simulate(&plate, &mut rng).unwrap();
        assert_eq!(t.len(), 5);
        for i in 0..5 {
            assert!(t.has_choice(&addr!["p", i, "c"]));
        }
        let arr = t.return_value().unwrap().as_array().unwrap().to_vec();
        assert_eq!(arr.len(), 5);
    }

    #[test]
    fn plate_enumeration_is_product_distribution() {
        let plate = Plate::new("p", 2, coin);
        let e = Enumeration::run(&plate).unwrap();
        assert_eq!(e.traces().len(), 4);
        let both = e.probability(|t| {
            t.value(&addr!["p", 0, "c"]).unwrap().truthy().unwrap()
                && t.value(&addr!["p", 1, "c"]).unwrap().truthy().unwrap()
        });
        assert!((both - 0.16).abs() < 1e-12);
    }

    #[test]
    fn nested_plates_nest_addresses() {
        let inner = Plate::new("inner", 2, coin);
        let outer = Plate::new("outer", 2, inner);
        let mut rng = StdRng::seed_from_u64(2);
        let t = simulate(&outer, &mut rng).unwrap();
        assert_eq!(t.len(), 4);
        assert!(t.has_choice(&addr!["outer", 1, "inner", 0, "c"]));
    }

    #[test]
    fn pair_scopes_components() {
        let pair = Pair::new("a", coin, "b", coin);
        let mut rng = StdRng::seed_from_u64(3);
        let t = simulate(&pair, &mut rng).unwrap();
        assert!(t.has_choice(&addr!["a", "c"]));
        assert!(t.has_choice(&addr!["b", "c"]));
        // Scoped models replay correctly.
        let rescored = score(&pair, &t.to_choice_map()).unwrap();
        assert!((rescored.score().log() - t.score().log()).abs() < 1e-12);
    }

    #[test]
    fn unfold_threads_state_and_scopes() {
        // A two-state Markov chain; the marginal of state 2 is checkable
        // by enumeration.
        let chain = Unfold::new("t", 3, Value::Bool(false), |state: &Value| {
            let prev = state.truthy().unwrap();
            move |h: &mut dyn Handler| {
                let p = if prev { 0.8 } else { 0.3 };
                h.sample(addr!["s"], Dist::flip(p))
            }
        });
        let e = Enumeration::run(&chain).unwrap();
        assert_eq!(e.traces().len(), 8);
        // P(s2 = 1) via the chain: forward computation.
        let p1 = 0.3;
        let p2 = p1 * 0.8 + (1.0 - p1) * 0.3;
        let p3 = p2 * 0.8 + (1.0 - p2) * 0.3;
        let est = e.probability(|t| t.value(&addr!["t", 2, "s"]).unwrap().truthy().unwrap());
        assert!((est - p3).abs() < 1e-12, "{est} vs {p3}");
        // Replay round-trips.
        let mut rng = StdRng::seed_from_u64(5);
        let tr = simulate(&chain, &mut rng).unwrap();
        let rescored = score(&chain, &tr.to_choice_map()).unwrap();
        assert!((rescored.score().log() - tr.score().log()).abs() < 1e-12);
    }

    #[test]
    fn plates_translate_with_site_rules() {
        // Correspondence site rules operate on the plate name (the head
        // component), so whole plates correspond at once.
        use crate::handlers::simulate;
        let p_plate = Plate::new("data", 4, |h: &mut dyn Handler| {
            h.sample(addr!["c"], Dist::flip(0.4))
        });
        let q_plate = Plate::new("data", 4, |h: &mut dyn Handler| {
            h.sample(addr!["c"], Dist::flip(0.7))
        });
        // Built directly on the public kernel-density oracle through the
        // incremental crate would be a cycle; instead verify reuse via a
        // scoring check: same choice map must replay under Q.
        let mut rng = StdRng::seed_from_u64(4);
        let t = simulate(&p_plate, &mut rng).unwrap();
        let under_q = score(&q_plate, &t.to_choice_map()).unwrap();
        assert_eq!(under_q.len(), t.len());
    }
}
