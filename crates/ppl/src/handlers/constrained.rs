//! Constrained execution: fix some choices, sample the rest.
//!
//! This is prior-proposal importance sampling: the returned log weight is
//! the joint log probability of the constrained choices and observations,
//! because the freshly sampled choices' contributions cancel between the
//! target and the proposal.

use rand::RngCore;

use crate::address::Address;
use crate::dist::Dist;
use crate::effects::{Handler, Model};
use crate::error::PplError;
use crate::logweight::LogWeight;
use crate::trace::{ChoiceMap, Trace};
use crate::value::Value;

/// A handler that draws constrained choices from a [`ChoiceMap`] and
/// samples unconstrained choices from the prior, accumulating an importance
/// weight.
pub struct ConstrainedSampler<'a> {
    constraints: &'a ChoiceMap,
    rng: &'a mut dyn RngCore,
    trace: Trace,
    log_weight: LogWeight,
}

impl std::fmt::Debug for ConstrainedSampler<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConstrainedSampler")
            .field("constraints", &self.constraints)
            .field("trace", &self.trace)
            .field("log_weight", &self.log_weight)
            .finish_non_exhaustive()
    }
}

impl<'a> ConstrainedSampler<'a> {
    /// Creates a constrained sampler.
    pub fn new(constraints: &'a ChoiceMap, rng: &'a mut dyn RngCore) -> ConstrainedSampler<'a> {
        ConstrainedSampler {
            constraints,
            rng,
            trace: Trace::new(),
            log_weight: LogWeight::ONE,
        }
    }

    /// Consumes the handler, returning the trace and the accumulated
    /// importance weight.
    pub fn into_parts(self) -> (Trace, LogWeight) {
        (self.trace, self.log_weight)
    }
}

impl Handler for ConstrainedSampler<'_> {
    fn sample(&mut self, addr: Address, dist: Dist) -> Result<Value, PplError> {
        let (value, constrained) = match self.constraints.get(&addr) {
            Some(v) => (v.clone(), true),
            None => (dist.sample(self.rng), false),
        };
        let log_prob = dist.log_prob(&value);
        if constrained {
            self.log_weight += log_prob;
        }
        self.trace
            .record_choice(addr, value.clone(), dist, log_prob)?;
        Ok(value)
    }

    fn observe(&mut self, addr: Address, dist: Dist, value: Value) -> Result<(), PplError> {
        let log_prob = dist.log_prob(&value);
        self.log_weight += log_prob;
        self.trace.record_observation(addr, value, dist, log_prob)
    }
}

/// Runs `model` with `constraints` fixed and everything else sampled from
/// the prior. Returns the trace and its importance weight
/// `P̃r[t] / proposal(t)`.
///
/// # Errors
///
/// Propagates evaluation errors from the model.
pub fn generate(
    model: &dyn Model,
    constraints: &ChoiceMap,
    rng: &mut dyn RngCore,
) -> Result<(Trace, LogWeight), PplError> {
    let mut handler = ConstrainedSampler::new(constraints, rng);
    let value = model.exec(&mut handler)?;
    let (mut trace, log_weight) = handler.into_parts();
    trace.set_return_value(value);
    Ok((trace, log_weight))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model(h: &mut dyn Handler) -> Result<Value, PplError> {
        let a = h.sample(addr!["a"], Dist::flip(0.2))?;
        let _b = h.sample(addr!["b"], Dist::flip(0.5))?;
        h.observe(addr!["o"], Dist::flip(0.9), Value::Bool(true))?;
        Ok(a)
    }

    #[test]
    fn constrained_choice_enters_weight() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut constraints = ChoiceMap::new();
        constraints.insert(addr!["a"], Value::Bool(true));
        let (trace, w) = generate(&model, &constraints, &mut rng).unwrap();
        // weight = p(a = true) * p(obs) = 0.2 * 0.9; b cancels.
        assert!((w.prob() - 0.18).abs() < 1e-12);
        assert_eq!(trace.value(&addr!["a"]), Some(&Value::Bool(true)));
    }

    #[test]
    fn unconstrained_run_weight_is_likelihood() {
        let mut rng = StdRng::seed_from_u64(6);
        let (_, w) = generate(&model, &ChoiceMap::new(), &mut rng).unwrap();
        assert!((w.prob() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn fully_constrained_weight_is_joint_score() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut constraints = ChoiceMap::new();
        constraints.insert(addr!["a"], Value::Bool(false));
        constraints.insert(addr!["b"], Value::Bool(true));
        let (trace, w) = generate(&model, &constraints, &mut rng).unwrap();
        assert!((w.log() - trace.score().log()).abs() < 1e-12);
    }

    #[test]
    fn constraint_outside_support_gives_zero_weight() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut constraints = ChoiceMap::new();
        constraints.insert(addr!["a"], Value::Int(7));
        let (_, w) = generate(&model, &constraints, &mut rng).unwrap();
        assert!(w.is_zero());
    }
}
