//! Standard effect handlers: prior simulation, trace scoring, and
//! constrained (importance-weighted) execution.
//!
//! Further handlers live where their algorithms do: the forward-translation
//! handler in the `incremental` crate, the MH regeneration handler in the
//! `inference` crate, the graph-building handler in `depgraph`.

mod constrained;
mod score;
mod simulate;

pub use constrained::{generate, ConstrainedSampler};
pub use score::{score, Replayer};
pub use simulate::{simulate, PriorSampler};
