//! Trace scoring: replay a program against recorded choices.

use crate::address::Address;
use crate::dist::Dist;
use crate::effects::{Handler, Model};
use crate::error::PplError;
use crate::trace::{ChoiceMap, Trace};
use crate::value::Value;

/// A handler that replays a program drawing every choice's value from a
/// [`ChoiceMap`], recording a fresh trace with the *current* program's
/// distributions and scores.
///
/// Replay against program `Q` of a trace recorded under program `P`
/// computes `P̃r[t ∼ Q]` — the workhorse of weight estimation.
#[derive(Debug)]
pub struct Replayer<'a> {
    source: &'a ChoiceMap,
    trace: Trace,
    strict: bool,
}

impl<'a> Replayer<'a> {
    /// Creates a strict replayer: every choice the program makes must be
    /// present in `source`.
    pub fn new(source: &'a ChoiceMap) -> Replayer<'a> {
        Replayer {
            source,
            trace: Trace::new(),
            strict: true,
        }
    }

    /// Consumes the handler, returning the re-scored trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }
}

impl Handler for Replayer<'_> {
    fn sample(&mut self, addr: Address, dist: Dist) -> Result<Value, PplError> {
        let value = match self.source.get(&addr) {
            Some(v) => v.clone(),
            None if self.strict => return Err(PplError::MissingChoice(addr)),
            None => unreachable!("non-strict replay is not constructed"),
        };
        let log_prob = dist.log_prob(&value);
        self.trace
            .record_choice(addr, value.clone(), dist, log_prob)?;
        Ok(value)
    }

    fn observe(&mut self, addr: Address, dist: Dist, value: Value) -> Result<(), PplError> {
        let log_prob = dist.log_prob(&value);
        self.trace.record_observation(addr, value, dist, log_prob)
    }
}

/// Replays `model` with choices drawn from `choices` and returns the
/// re-scored trace. The trace's [`Trace::score`] is `log P̃r[t ∼ model]`.
///
/// # Errors
///
/// Returns [`PplError::MissingChoice`] if the model needs a choice that
/// `choices` does not bind, plus any evaluation errors.
pub fn score(model: &dyn Model, choices: &ChoiceMap) -> Result<Trace, PplError> {
    let mut handler = Replayer::new(choices);
    let value = model.exec(&mut handler)?;
    let mut trace = handler.into_trace();
    trace.set_return_value(value);
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr;
    use crate::handlers::simulate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain(h: &mut dyn Handler) -> Result<Value, PplError> {
        let a = h.sample(addr!["a"], Dist::flip(0.2))?;
        let p = if a.truthy()? { 0.9 } else { 0.1 };
        let b = h.sample(addr!["b"], Dist::flip(p))?;
        h.observe(addr!["o"], Dist::flip(0.7), Value::Bool(true))?;
        Ok(b)
    }

    #[test]
    fn simulate_then_score_round_trips() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let t = simulate(&chain, &mut rng).unwrap();
            let rescored = score(&chain, &t.to_choice_map()).unwrap();
            assert!((t.score().log() - rescored.score().log()).abs() < 1e-12);
            assert_eq!(t.return_value(), rescored.return_value());
        }
    }

    #[test]
    fn scoring_under_other_program_uses_its_params() {
        // Record under flip(0.2); score under flip(0.5).
        let p_model = |h: &mut dyn Handler| h.sample(addr!["x"], Dist::flip(0.2));
        let q_model = |h: &mut dyn Handler| h.sample(addr!["x"], Dist::flip(0.5));
        let mut map = ChoiceMap::new();
        map.insert(addr!["x"], Value::Bool(true));
        let under_p = score(&p_model, &map).unwrap();
        let under_q = score(&q_model, &map).unwrap();
        assert!((under_p.score().prob() - 0.2).abs() < 1e-12);
        assert!((under_q.score().prob() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn missing_choice_errors() {
        let map = ChoiceMap::new();
        assert!(matches!(
            score(&chain, &map),
            Err(PplError::MissingChoice(_))
        ));
    }

    #[test]
    fn value_outside_support_scores_zero_not_error() {
        let model = |h: &mut dyn Handler| h.sample(addr!["x"], Dist::uniform_int(0, 5));
        let mut map = ChoiceMap::new();
        map.insert(addr!["x"], Value::Int(9));
        let t = score(&model, &map).unwrap();
        assert!(t.score().is_zero());
    }
}
