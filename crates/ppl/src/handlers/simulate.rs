//! Prior simulation: run the program, sampling every choice fresh.

use rand::RngCore;

use crate::address::Address;
use crate::dist::Dist;
use crate::effects::{Handler, Model};
use crate::error::PplError;
use crate::trace::Trace;
use crate::value::Value;

/// A handler that samples every random choice from its distribution and
/// records a complete [`Trace`].
///
/// # Examples
///
/// ```
/// use ppl::handlers::simulate;
/// use ppl::{addr, Handler, PplError, Value};
/// use ppl::dist::Dist;
/// use rand::SeedableRng;
///
/// let model = |h: &mut dyn Handler| h.sample(addr!["x"], Dist::flip(0.5));
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let trace = simulate(&model, &mut rng)?;
/// assert_eq!(trace.len(), 1);
/// # Ok::<(), PplError>(())
/// ```
pub struct PriorSampler<'a> {
    rng: &'a mut dyn RngCore,
    trace: Trace,
}

impl std::fmt::Debug for PriorSampler<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PriorSampler")
            .field("trace", &self.trace)
            .finish_non_exhaustive()
    }
}

impl<'a> PriorSampler<'a> {
    /// Creates a sampler drawing randomness from `rng`.
    pub fn new(rng: &'a mut dyn RngCore) -> PriorSampler<'a> {
        PriorSampler {
            rng,
            trace: Trace::new(),
        }
    }

    /// Consumes the handler, returning the recorded trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    /// Borrows the trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }
}

impl Handler for PriorSampler<'_> {
    fn sample(&mut self, addr: Address, dist: Dist) -> Result<Value, PplError> {
        let value = dist.sample(self.rng);
        let log_prob = dist.log_prob(&value);
        self.trace
            .record_choice(addr, value.clone(), dist, log_prob)?;
        Ok(value)
    }

    fn observe(&mut self, addr: Address, dist: Dist, value: Value) -> Result<(), PplError> {
        let log_prob = dist.log_prob(&value);
        self.trace.record_observation(addr, value, dist, log_prob)
    }
}

/// Runs `model` once under the prior and returns the recorded trace (with
/// the return value stored in it).
///
/// # Errors
///
/// Propagates evaluation errors from the model.
pub fn simulate(model: &dyn Model, rng: &mut dyn RngCore) -> Result<Trace, PplError> {
    let mut handler = PriorSampler::new(rng);
    let value = model.exec(&mut handler)?;
    let mut trace = handler.into_trace();
    trace.set_return_value(value);
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_flips(h: &mut dyn Handler) -> Result<Value, PplError> {
        let a = h.sample(addr!["a"], Dist::flip(0.5))?;
        let b = h.sample(addr!["b"], Dist::flip(0.5))?;
        h.observe(addr!["o"], Dist::flip(0.9), Value::Bool(true))?;
        Ok(Value::Bool(a.truthy()? && b.truthy()?))
    }

    #[test]
    fn records_choices_and_observations() {
        let mut rng = StdRng::seed_from_u64(10);
        let trace = simulate(&two_flips, &mut rng).unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.num_observations(), 1);
        assert!(trace.return_value().is_some());
        // score = 0.5 * 0.5 * 0.9
        assert!((trace.score().prob() - 0.225).abs() < 1e-12);
    }

    #[test]
    fn simulation_is_deterministic_given_seed() {
        let t1 = simulate(&two_flips, &mut StdRng::seed_from_u64(42)).unwrap();
        let t2 = simulate(&two_flips, &mut StdRng::seed_from_u64(42)).unwrap();
        assert_eq!(t1, t2);
    }

    #[test]
    fn address_collision_is_an_error() {
        let model = |h: &mut dyn Handler| {
            h.sample(addr!["x"], Dist::flip(0.5))?;
            h.sample(addr!["x"], Dist::flip(0.5))
        };
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            simulate(&model, &mut rng),
            Err(PplError::AddressCollision(_))
        ));
    }
}
