//! Global variable-name interner.
//!
//! Compiled programs, dependency summaries, and environments key
//! variables by `&'static str` so that copying a name is pointer-sized
//! and hashing never walks a `String`. Like the address interner, the
//! name universe is bounded by the program text, so leaking the backing
//! storage is a deliberate space-for-time trade.

use std::sync::{OnceLock, RwLock};

use crate::fxhash::FxHashSet;

/// Interns a variable name into `'static` storage.
///
/// Repeated calls with equal strings return the same pointer, so interned
/// names can be compared and hashed by content or identity
/// interchangeably.
pub fn intern_name(name: &str) -> &'static str {
    static GLOBAL: OnceLock<RwLock<FxHashSet<&'static str>>> = OnceLock::new();
    let global = GLOBAL.get_or_init(|| RwLock::new(FxHashSet::default()));
    if let Some(&interned) = global.read().expect("name interner poisoned").get(name) {
        return interned;
    }
    let mut set = global.write().expect("name interner poisoned");
    if let Some(&interned) = set.get(name) {
        return interned;
    }
    let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
    set.insert(leaked);
    leaked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_pointer_stable() {
        let a = intern_name("some_variable");
        let b = intern_name("some_variable");
        assert_eq!(a, b);
        assert!(std::ptr::eq(a, b));
        let c = intern_name("another_variable");
        assert_ne!(a, c);
    }
}
