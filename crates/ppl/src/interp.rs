//! Big-step traced interpreter for the surface language.
//!
//! Executes a [`Program`] end-to-end against any [`Handler`], issuing a
//! `sample` effect at each random expression and an `observe` effect at
//! each observation. Addresses are the random expression's site label
//! extended with the indices of all enclosing loops (Section 5.4): `for`
//! loops contribute the loop-variable value, `while` loops their iteration
//! counter.

use std::collections::HashMap;

use crate::address::Address;
use crate::ast::{BinOp, Block, Builtin, Expr, Program, RandExpr, RandKind, Stmt, UnOp};
use crate::compile::{acquire_frame, compiled_for, note_tree_walk_exec, run_compiled};
use crate::dist::Dist;
use crate::effects::{Handler, Model};
use crate::error::PplError;
use crate::intern::intern_name;
use crate::value::Value;

/// Default step budget: generous enough for every evaluation program, small
/// enough to catch accidental infinite loops in tests.
pub const DEFAULT_FUEL: u64 = 10_000_000;

/// The interpreter configuration.
#[derive(Debug, Clone)]
pub struct Interp {
    fuel: u64,
}

impl Default for Interp {
    fn default() -> Self {
        Interp { fuel: DEFAULT_FUEL }
    }
}

impl Interp {
    /// Creates an interpreter with the default step budget.
    pub fn new() -> Interp {
        Interp::default()
    }

    /// Sets the step budget (number of statement/expression steps before
    /// the run is aborted with [`PplError::FuelExhausted`]).
    pub fn with_fuel(fuel: u64) -> Interp {
        Interp { fuel }
    }

    /// Runs `program` against `handler` and returns its return value (or
    /// `Value::Int(0)` if the program has no `return`).
    ///
    /// Execution goes through the compiled path ([`crate::compile`]): the
    /// program is lowered once (cached globally by fingerprint) and
    /// evaluated against a pooled register frame. Semantics are
    /// bit-identical to [`Interp::run_tree_walk`], which the differential
    /// suite holds this path against.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors (unbound variables, type errors,
    /// invalid distribution parameters, fuel exhaustion) and handler
    /// errors.
    pub fn run(&self, program: &Program, handler: &mut dyn Handler) -> Result<Value, PplError> {
        let compiled = compiled_for(program);
        let mut frame = acquire_frame();
        run_compiled(&compiled, &mut frame, self.fuel, handler)
    }

    /// Runs `program` by direct tree-walk over the AST — the reference
    /// semantics the compiled path is tested against.
    ///
    /// # Errors
    ///
    /// As for [`Interp::run`].
    pub fn run_tree_walk(
        &self,
        program: &Program,
        handler: &mut dyn Handler,
    ) -> Result<Value, PplError> {
        note_tree_walk_exec();
        let mut state = State {
            env: HashMap::new(),
            loops: Vec::new(),
            fuel: self.fuel,
            budget: self.fuel,
        };
        state.exec_block(&program.body, handler)?;
        match &program.ret {
            Some(e) => state.eval(e, handler),
            None => Ok(Value::Int(0)),
        }
    }
}

struct State {
    // Keys are interned: binding a variable copies a pointer, not a
    // `String` (names recur across iterations and runs, so the interner
    // is warm after the first execution).
    env: HashMap<&'static str, Value>,
    loops: Vec<i64>,
    fuel: u64,
    budget: u64,
}

impl State {
    fn tick(&mut self) -> Result<(), PplError> {
        if self.fuel == 0 {
            return Err(PplError::FuelExhausted {
                budget: self.budget,
            });
        }
        self.fuel -= 1;
        Ok(())
    }

    fn address_for(&self, rand: &RandExpr) -> Address {
        let mut addr = Address::from(rand.site.as_str());
        for &i in &self.loops {
            addr.push(i);
        }
        addr
    }

    fn lookup(&self, name: &str) -> Result<&Value, PplError> {
        self.env
            .get(name)
            .ok_or_else(|| PplError::UnboundVariable(name.to_string()))
    }

    fn eval(&mut self, expr: &Expr, handler: &mut dyn Handler) -> Result<Value, PplError> {
        self.tick()?;
        match expr {
            Expr::Const(v) => Ok(v.clone()),
            Expr::Var(name) => Ok(self.lookup(name)?.clone()),
            Expr::Unary(op, e) => {
                let v = self.eval(e, handler)?;
                apply_unary(*op, &v)
            }
            Expr::Binary(op, lhs, rhs) => {
                let a = self.eval(lhs, handler)?;
                let b = self.eval(rhs, handler)?;
                apply_binary(*op, &a, &b)
            }
            Expr::Index(arr, idx) => {
                let a = self.eval(arr, handler)?;
                let i = self.eval(idx, handler)?.as_int()?;
                let items = a.as_array()?;
                if i < 0 || i as usize >= items.len() {
                    return Err(PplError::IndexOutOfBounds {
                        index: i,
                        len: items.len(),
                    });
                }
                Ok(items[i as usize].clone())
            }
            Expr::ArrayInit(n, init) => {
                let n = self.eval(n, handler)?.as_int()?;
                if n < 0 {
                    return Err(PplError::Other(format!("array length is negative: {n}")));
                }
                let init = self.eval(init, handler)?;
                Ok(Value::array(vec![init; n as usize]))
            }
            Expr::Call(builtin, args) => {
                if args.len() != builtin.arity() {
                    return Err(PplError::Other(format!(
                        "{} expects {} argument(s), got {}",
                        builtin.name(),
                        builtin.arity(),
                        args.len()
                    )));
                }
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, handler)?);
                }
                apply_builtin(*builtin, &vals)
            }
            Expr::Ternary(cond, then_e, else_e) => {
                if self.eval(cond, handler)?.truthy()? {
                    self.eval(then_e, handler)
                } else {
                    self.eval(else_e, handler)
                }
            }
            Expr::Random(rand) => self.eval_random(rand, handler),
        }
    }

    fn build_dist(&mut self, kind: &RandKind, handler: &mut dyn Handler) -> Result<Dist, PplError> {
        match kind {
            RandKind::Flip(p) => {
                let p = self.eval(p, handler)?.as_real()?;
                Dist::try_flip(p)
            }
            RandKind::UniformInt(lo, hi) => {
                let lo = self.eval(lo, handler)?.as_int()?;
                let hi = self.eval(hi, handler)?.as_int()?;
                Dist::try_uniform_int(lo, hi)
            }
            RandKind::UniformReal(lo, hi) => {
                let lo = self.eval(lo, handler)?.as_real()?;
                let hi = self.eval(hi, handler)?.as_real()?;
                Dist::try_uniform_real(lo, hi)
            }
            RandKind::Gauss(mean, std) => {
                let mean = self.eval(mean, handler)?.as_real()?;
                let std = self.eval(std, handler)?.as_real()?;
                Dist::try_normal(mean, std)
            }
            RandKind::Categorical(ws) => {
                let mut probs = Vec::with_capacity(ws.len());
                for w in ws {
                    probs.push(self.eval(w, handler)?.as_real()?);
                }
                Dist::try_categorical(&probs)
            }
            RandKind::Poisson(l) => {
                let l = self.eval(l, handler)?.as_real()?;
                Dist::try_poisson(l)
            }
            RandKind::GeometricDist(p) => {
                let p = self.eval(p, handler)?.as_real()?;
                Dist::try_geometric(p)
            }
            RandKind::Beta(a, b) => {
                let a = self.eval(a, handler)?.as_real()?;
                let b = self.eval(b, handler)?.as_real()?;
                Dist::try_beta(a, b)
            }
            RandKind::Exponential(r) => {
                let r = self.eval(r, handler)?.as_real()?;
                Dist::try_exponential(r)
            }
        }
    }

    fn eval_random(
        &mut self,
        rand: &RandExpr,
        handler: &mut dyn Handler,
    ) -> Result<Value, PplError> {
        let dist = self.build_dist(&rand.kind, handler)?;
        let addr = self.address_for(rand);
        handler.sample(addr, dist)
    }

    fn exec_block(&mut self, block: &Block, handler: &mut dyn Handler) -> Result<(), PplError> {
        for stmt in block.stmts() {
            self.exec_stmt(stmt, handler)?;
        }
        Ok(())
    }

    fn exec_stmt(&mut self, stmt: &Stmt, handler: &mut dyn Handler) -> Result<(), PplError> {
        self.tick()?;
        match stmt {
            Stmt::Skip => Ok(()),
            Stmt::Assign(name, e) => {
                let v = self.eval(e, handler)?;
                self.env.insert(intern_name(name), v);
                Ok(())
            }
            Stmt::AssignIndex(name, idx, e) => {
                let i = self.eval(idx, handler)?.as_int()?;
                let v = self.eval(e, handler)?;
                let slot = self
                    .env
                    .get_mut(name.as_str())
                    .ok_or_else(|| PplError::UnboundVariable(name.clone()))?;
                let items = slot.as_array_mut()?;
                if i < 0 || i as usize >= items.len() {
                    return Err(PplError::IndexOutOfBounds {
                        index: i,
                        len: items.len(),
                    });
                }
                items[i as usize] = v;
                Ok(())
            }
            Stmt::If(cond, then_b, else_b) => {
                if self.eval(cond, handler)?.truthy()? {
                    self.exec_block(then_b, handler)
                } else {
                    self.exec_block(else_b, handler)
                }
            }
            Stmt::While(cond, body) => {
                // Both the condition and the body of iteration `i` address
                // their choices under loop index `i`, so unbounded loops
                // like the geometric program of Fig. 6 index their
                // Bernoulli trials 0, 1, 2, … (Section 5.4).
                let mut iter = 0_i64;
                loop {
                    self.loops.push(iter);
                    let keep_going = self.eval(cond, handler).and_then(|v| v.truthy());
                    match keep_going {
                        Ok(true) => {}
                        other => {
                            self.loops.pop();
                            return other.map(|_| ());
                        }
                    }
                    let r = self.exec_block(body, handler);
                    self.loops.pop();
                    r?;
                    iter += 1;
                }
            }
            Stmt::For(var, lo, hi, body) => {
                let lo = self.eval(lo, handler)?.as_int()?;
                let hi = self.eval(hi, handler)?.as_int()?;
                let var = intern_name(var);
                for i in lo..hi {
                    self.env.insert(var, Value::Int(i));
                    self.loops.push(i);
                    let r = self.exec_block(body, handler);
                    self.loops.pop();
                    r?;
                }
                Ok(())
            }
            Stmt::Observe(rand, value_expr) => {
                let dist = self.build_dist(&rand.kind, handler)?;
                let value = self.eval(value_expr, handler)?;
                let addr = self.address_for(rand);
                handler.observe(addr, dist, value)
            }
        }
    }
}

/// Applies a unary operator to a value — the language's operator
/// semantics, exposed for alternative interpreters (e.g. the
/// dependency-graph runtime).
///
/// # Errors
///
/// Returns [`PplError::Type`] on ill-typed operands.
pub fn apply_unary(op: UnOp, v: &Value) -> Result<Value, PplError> {
    match op {
        UnOp::Neg => match v {
            Value::Int(i) => Ok(Value::Int(-i)),
            other => Ok(Value::Real(-other.as_real()?)),
        },
        UnOp::Not => Ok(Value::Bool(!v.truthy()?)),
    }
}

/// Applies a binary operator to two values.
///
/// # Errors
///
/// Returns [`PplError::Type`] on ill-typed operands and
/// [`PplError::DivisionByZero`] for `/` and `%` by zero.
pub fn apply_binary(op: BinOp, a: &Value, b: &Value) -> Result<Value, PplError> {
    use BinOp::*;
    match op {
        Add | Sub | Mul | Mod => {
            // Integer arithmetic stays integral; anything else promotes.
            match (a, b) {
                (Value::Int(x), Value::Int(y)) => match op {
                    Add => Ok(Value::Int(x.wrapping_add(*y))),
                    Sub => Ok(Value::Int(x.wrapping_sub(*y))),
                    Mul => Ok(Value::Int(x.wrapping_mul(*y))),
                    Mod => {
                        if *y == 0 {
                            Err(PplError::DivisionByZero)
                        } else {
                            Ok(Value::Int(x.rem_euclid(*y)))
                        }
                    }
                    _ => unreachable!(),
                },
                _ => {
                    let x = a.as_real()?;
                    let y = b.as_real()?;
                    match op {
                        Add => Ok(Value::Real(x + y)),
                        Sub => Ok(Value::Real(x - y)),
                        Mul => Ok(Value::Real(x * y)),
                        Mod => {
                            if y == 0.0 {
                                Err(PplError::DivisionByZero)
                            } else {
                                Ok(Value::Real(x.rem_euclid(y)))
                            }
                        }
                        _ => unreachable!(),
                    }
                }
            }
        }
        // Division is exact (rational) in the paper; we always produce a
        // real so `a/3` means one third, not integer division.
        Div => {
            let x = a.as_real()?;
            let y = b.as_real()?;
            if y == 0.0 {
                return Err(PplError::DivisionByZero);
            }
            Ok(Value::Real(x / y))
        }
        Lt => Ok(Value::Bool(a.as_real()? < b.as_real()?)),
        Le => Ok(Value::Bool(a.as_real()? <= b.as_real()?)),
        Gt => Ok(Value::Bool(a.as_real()? > b.as_real()?)),
        Ge => Ok(Value::Bool(a.as_real()? >= b.as_real()?)),
        Eq => Ok(Value::Bool(a.num_eq(b))),
        Ne => Ok(Value::Bool(!a.num_eq(b))),
        And => Ok(Value::Bool(a.truthy()? && b.truthy()?)),
        Or => Ok(Value::Bool(a.truthy()? || b.truthy()?)),
    }
}

/// Applies a builtin function to evaluated arguments.
///
/// # Errors
///
/// Returns [`PplError::Type`] on ill-typed arguments.
///
/// # Panics
///
/// Panics if `args` has fewer elements than the builtin's arity (callers
/// validate arity first).
pub fn apply_builtin(builtin: Builtin, args: &[Value]) -> Result<Value, PplError> {
    match builtin {
        Builtin::Sqrt => Ok(Value::Real(args[0].as_real()?.sqrt())),
        Builtin::Exp => Ok(Value::Real(args[0].as_real()?.exp())),
        Builtin::Ln => Ok(Value::Real(args[0].as_real()?.ln())),
        Builtin::Abs => match &args[0] {
            Value::Int(i) => Ok(Value::Int(i.abs())),
            other => Ok(Value::Real(other.as_real()?.abs())),
        },
        Builtin::Min => Ok(Value::Real(args[0].as_real()?.min(args[1].as_real()?))),
        Builtin::Max => Ok(Value::Real(args[0].as_real()?.max(args[1].as_real()?))),
        Builtin::Floor => Ok(Value::Int(args[0].as_real()?.floor() as i64)),
        Builtin::Len => Ok(Value::Int(args[0].as_array()?.len() as i64)),
    }
}

impl Model for Program {
    fn exec(&self, handler: &mut dyn Handler) -> Result<Value, PplError> {
        Interp::new().run(self, handler)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr;
    use crate::ast::SiteId;
    use crate::handlers::{score, simulate};
    use crate::trace::ChoiceMap;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The program of Figure 3 (Example 1).
    fn fig3_program() -> Program {
        Program::new(
            Block::new(vec![
                Stmt::Assign("a".into(), Expr::int(1)),
                Stmt::Assign(
                    "b".into(),
                    Expr::flip("b", Expr::var("a").div(Expr::int(3))),
                ),
                Stmt::If(
                    Expr::var("a").lt(Expr::int(2)),
                    Block::new(vec![Stmt::Assign(
                        "c".into(),
                        Expr::uniform("c", Expr::int(1), Expr::int(6)),
                    )]),
                    Block::new(vec![Stmt::Assign(
                        "c".into(),
                        Expr::uniform("c", Expr::int(6), Expr::int(10)),
                    )]),
                ),
                Stmt::Assign(
                    "d".into(),
                    Expr::flip("d", Expr::var("b").div(Expr::int(2))),
                ),
                Stmt::Observe(
                    RandExpr {
                        site: SiteId::new("obs"),
                        kind: RandKind::Flip(Box::new(Expr::real(0.2))),
                    },
                    Expr::var("d"),
                ),
            ]),
            Some(Expr::var("c")),
        )
    }

    #[test]
    fn example1_trace_probability() {
        // t = [b -> 1, c -> 4, d -> 1]: P̃r[t ∼ P] = 1/3 * 1/6 * 1/2 * 1/5.
        let program = fig3_program();
        let mut map = ChoiceMap::new();
        map.insert(addr!["b"], Value::Bool(true));
        map.insert(addr!["c"], Value::Int(4));
        map.insert(addr!["d"], Value::Bool(true));
        let trace = score(&program, &map).unwrap();
        let expected = (1.0 / 3.0) * (1.0 / 6.0) * 0.5 * 0.2;
        assert!((trace.score().prob() - expected).abs() < 1e-12);
        assert_eq!(trace.return_value(), Some(&Value::Int(4)));
    }

    #[test]
    fn branch_selects_distribution() {
        // With a = 1 the then-branch runs: c in 1..=6.
        let program = fig3_program();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let t = simulate(&program, &mut rng).unwrap();
            let c = t.value(&addr!["c"]).unwrap().as_int().unwrap();
            assert!((1..=6).contains(&c));
        }
    }

    #[test]
    fn while_loop_indexes_addresses() {
        // geometric from Fig. 6: while (flip(p)) n++
        let program = Program::new(
            Block::new(vec![
                Stmt::Assign("n".into(), Expr::int(1)),
                Stmt::While(
                    Expr::flip("t", Expr::real(0.5)),
                    Block::new(vec![Stmt::Assign(
                        "n".into(),
                        Expr::var("n").add(Expr::int(1)),
                    )]),
                ),
            ]),
            Some(Expr::var("n")),
        );
        let mut rng = StdRng::seed_from_u64(3);
        let t = simulate(&program, &mut rng).unwrap();
        // Condition evaluations are indexed by iteration: t/0, t/1, ...
        let n = t.return_value().unwrap().as_int().unwrap();
        assert_eq!(t.len() as i64, n); // n-1 successes + 1 failure
        for i in 0..n {
            assert!(t.has_choice(&addr!["t", i]), "missing t/{i}");
        }
    }

    #[test]
    fn for_loop_uses_loop_variable_in_address() {
        let program = Program::new(
            Block::new(vec![
                Stmt::Assign(
                    "xs".into(),
                    Expr::ArrayInit(Box::new(Expr::int(3)), Box::new(Expr::int(0))),
                ),
                Stmt::For(
                    "i".into(),
                    Expr::int(0),
                    Expr::int(3),
                    Block::new(vec![Stmt::AssignIndex(
                        "xs".into(),
                        Expr::var("i"),
                        Expr::flip("x", Expr::real(0.5)),
                    )]),
                ),
            ]),
            Some(Expr::var("xs")),
        );
        let mut rng = StdRng::seed_from_u64(4);
        let t = simulate(&program, &mut rng).unwrap();
        assert_eq!(t.len(), 3);
        for i in 0..3_i64 {
            assert!(t.has_choice(&addr!["x", i]), "missing x/{i}");
        }
        let rv = t.return_value().unwrap().as_array().unwrap().to_vec();
        assert_eq!(rv.len(), 3);
    }

    #[test]
    fn fuel_limits_infinite_loops() {
        let program = Program::new(
            Block::new(vec![Stmt::While(Expr::bool(true), Block::empty())]),
            None,
        );
        let mut rng = StdRng::seed_from_u64(5);
        let mut h = crate::handlers::PriorSampler::new(&mut rng);
        let err = Interp::with_fuel(1000).run(&program, &mut h).unwrap_err();
        assert!(matches!(err, PplError::FuelExhausted { .. }));
    }

    #[test]
    fn arithmetic_and_builtins() {
        let program = Program::new(
            Block::new(vec![
                Stmt::Assign("x".into(), Expr::int(7).sub(Expr::int(3))),
                Stmt::Assign("y".into(), Expr::Call(Builtin::Sqrt, vec![Expr::var("x")])),
                Stmt::Assign(
                    "z".into(),
                    Expr::Call(Builtin::Max, vec![Expr::var("y"), Expr::real(1.5)]),
                ),
            ]),
            Some(Expr::var("z")),
        );
        let mut rng = StdRng::seed_from_u64(6);
        let t = simulate(&program, &mut rng).unwrap();
        assert_eq!(t.return_value(), Some(&Value::Real(2.0)));
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let program = Program::new(
            Block::new(vec![Stmt::Assign(
                "x".into(),
                Expr::int(1).div(Expr::int(0)),
            )]),
            None,
        );
        let mut rng = StdRng::seed_from_u64(7);
        let mut h = crate::handlers::PriorSampler::new(&mut rng);
        assert!(matches!(
            Interp::new().run(&program, &mut h),
            Err(PplError::DivisionByZero)
        ));
    }

    #[test]
    fn unbound_variable_is_an_error() {
        let program = Program::new(
            Block::new(vec![Stmt::Assign("x".into(), Expr::var("ghost"))]),
            None,
        );
        let mut rng = StdRng::seed_from_u64(8);
        let mut h = crate::handlers::PriorSampler::new(&mut rng);
        assert!(matches!(
            Interp::new().run(&program, &mut h),
            Err(PplError::UnboundVariable(_))
        ));
    }

    #[test]
    fn index_out_of_bounds_is_an_error() {
        let program = Program::new(
            Block::new(vec![
                Stmt::Assign(
                    "a".into(),
                    Expr::ArrayInit(Box::new(Expr::int(2)), Box::new(Expr::int(0))),
                ),
                Stmt::Assign("x".into(), Expr::var("a").index(Expr::int(5))),
            ]),
            None,
        );
        let mut rng = StdRng::seed_from_u64(9);
        let mut h = crate::handlers::PriorSampler::new(&mut rng);
        assert!(matches!(
            Interp::new().run(&program, &mut h),
            Err(PplError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn invalid_flip_parameter_is_an_error() {
        let program = Program::new(
            Block::new(vec![Stmt::Assign(
                "x".into(),
                Expr::flip("x", Expr::real(1.5)),
            )]),
            None,
        );
        let mut rng = StdRng::seed_from_u64(10);
        let mut h = crate::handlers::PriorSampler::new(&mut rng);
        assert!(matches!(
            Interp::new().run(&program, &mut h),
            Err(PplError::InvalidDistribution(_))
        ));
    }

    #[test]
    fn ternary_branches_are_lazy() {
        // Only the taken branch's random expression is evaluated, so
        // exactly one of a/b appears in the trace.
        let program = Program::new(
            Block::new(vec![
                Stmt::Assign("c".into(), Expr::flip("c", Expr::real(0.5))),
                Stmt::Assign(
                    "x".into(),
                    Expr::var("c").ternary(
                        Expr::flip("a", Expr::real(0.5)),
                        Expr::flip("b", Expr::real(0.5)),
                    ),
                ),
            ]),
            Some(Expr::var("x")),
        );
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..20 {
            let t = simulate(&program, &mut rng).unwrap();
            assert_eq!(t.len(), 2);
            let c = t.value(&addr!["c"]).unwrap().truthy().unwrap();
            assert_eq!(t.has_choice(&addr!["a"]), c);
            assert_eq!(t.has_choice(&addr!["b"]), !c);
        }
    }

    #[test]
    fn modulo_is_euclidean() {
        let program = Program::new(
            Block::new(vec![Stmt::Assign(
                "x".into(),
                Expr::bin(BinOp::Mod, Expr::int(-7), Expr::int(3)),
            )]),
            Some(Expr::var("x")),
        );
        let mut rng = StdRng::seed_from_u64(11);
        let t = simulate(&program, &mut rng).unwrap();
        assert_eq!(t.return_value(), Some(&Value::Int(2)));
    }
}
