//! # ppl — probabilistic language substrate
//!
//! The probabilistic programming substrate underlying the incremental
//! inference workspace (a reproduction of *Incremental Inference for
//! Probabilistic Programs*, PLDI 2018). It provides:
//!
//! - the surface language of the paper's Section 3 plus the extensions its
//!   evaluation programs need: [`ast`], [`parser`], a pretty-printer, and a
//!   reference [small-step semantics](smallstep) (Figure 2);
//! - traces and hierarchical addresses: [`Trace`], [`Address`];
//! - the distribution library: [`dist`];
//! - the effect-handler runtime in the lightweight transformational
//!   compilation style of Wingate et al. used by the paper's Section 7.1
//!   embedding: [`Model`], [`Handler`], and the standard [`handlers`];
//! - exact enumeration of finite discrete programs: [`enumerate`].
//!
//! # Example: define, simulate, and score a model
//!
//! ```
//! use ppl::{addr, Handler, Model, PplError, Value};
//! use ppl::dist::Dist;
//! use ppl::handlers::{simulate, score};
//! use rand::SeedableRng;
//!
//! // A model is any closure over a handler...
//! let model = |h: &mut dyn Handler| -> Result<Value, PplError> {
//!     let x = h.sample(addr!["x"], Dist::flip(0.25))?;
//!     h.observe(addr!["o"], Dist::flip(0.9), Value::Bool(true))?;
//!     Ok(x)
//! };
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let trace = simulate(&model, &mut rng)?;
//!
//! // ...or a parsed program in the paper's surface syntax.
//! let program = ppl::parse("x = flip(0.25) @ x; return x;")?;
//! let trace2 = score(&program, &trace.filter_choices(|_| true))?;
//! assert_eq!(trace2.len(), 1);
//! # Ok::<(), PplError>(())
//! ```

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

pub mod address;
pub mod analysis;
pub mod ast;
pub mod check;
pub mod compile;
pub mod dist;
pub mod effects;
pub mod enumerate;
pub mod error;
pub mod fxhash;
pub mod gen;
pub mod handlers;
pub mod intern;
pub mod interp;
pub mod logweight;
pub mod parser;
pub mod pretty;
pub mod smallstep;
pub mod trace;
pub mod trace_io;
pub mod value;

pub use address::{Address, AddressId, AddressInterner};
pub use compile::{
    compiled_for, compiled_for_pair, compiled_for_shared, CompiledProgram, EvalFrame, PooledFrame,
    SlotId,
};
pub use effects::{Handler, Model};
pub use enumerate::Enumeration;
pub use error::PplError;
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use intern::intern_name;
pub use interp::Interp;
pub use logweight::LogWeight;
pub use parser::{parse, parse_with_spans, Span, SpanTable};
pub use trace::{ChoiceMap, ChoiceRecord, ObsRecord, Trace};
pub use value::Value;

#[cfg(test)]
mod semantics_agreement {
    //! The big-step traced interpreter and the small-step reference
    //! semantics must induce the same distribution on executions.

    use std::collections::HashMap;

    use crate::enumerate::Enumeration;
    use crate::parser::parse;
    use crate::smallstep::enumerate_executions;

    fn distribution_by_trace(program_src: &str) -> (HashMap<String, f64>, HashMap<String, f64>) {
        let program = parse(program_src).unwrap();
        // Big-step: enumerate with the handler machinery.
        let big = Enumeration::run(&program).unwrap();
        let mut big_map = HashMap::new();
        for t in big.traces() {
            let key: Vec<String> = t.choices().map(|(_, c)| c.value.to_string()).collect();
            let p = t.score().prob();
            if p > 0.0 {
                *big_map.entry(key.join(",")).or_insert(0.0) += p;
            }
        }
        // Small-step reference semantics.
        let small = enumerate_executions(&program, 1_000_000).unwrap();
        let mut small_map = HashMap::new();
        for r in small {
            let key: Vec<String> = r.trace.iter().map(|v| v.to_string()).collect();
            if r.prob > 0.0 {
                *small_map.entry(key.join(",")).or_insert(0.0) += r.prob;
            }
        }
        (big_map, small_map)
    }

    fn assert_same_distribution(src: &str) {
        let (big, small) = distribution_by_trace(src);
        assert_eq!(
            big.len(),
            small.len(),
            "different numbers of positive-probability traces for `{src}`:\nbig: {big:?}\nsmall: {small:?}"
        );
        for (key, p_big) in &big {
            let p_small = small
                .get(key)
                .unwrap_or_else(|| panic!("small-step lacks trace {key} for `{src}`"));
            assert!(
                (p_big - p_small).abs() < 1e-12,
                "trace {key}: big {p_big} vs small {p_small}"
            );
        }
    }

    #[test]
    fn agreement_on_straight_line() {
        assert_same_distribution("x = flip(0.3); y = flip(0.6); return x;");
    }

    #[test]
    fn agreement_on_example1() {
        assert_same_distribution(
            "a = 1;
             b = flip(a / 3);
             if a < 2 { c = uniform(1, 6); } else { c = uniform(6, 10); }
             d = flip(b / 2);
             observe(flip(1 / 5) == d);
             return c;",
        );
    }

    #[test]
    fn agreement_on_burglary() {
        assert_same_distribution(
            "burglary = flip(0.02);
             pAlarm = burglary ? 0.9 : 0.01;
             alarm = flip(pAlarm);
             if alarm { pMaryWakes = 0.8; } else { pMaryWakes = 0.05; }
             observe(flip(pMaryWakes) == 1);
             return burglary;",
        );
    }

    #[test]
    fn agreement_with_observation_of_variable() {
        assert_same_distribution(
            "x = flip(0.5);
             observe(flip(0.2) == x);
             return x;",
        );
    }

    #[test]
    fn agreement_with_dependent_chain() {
        assert_same_distribution(
            "a = flip(0.5);
             b = flip(a ? 0.9 : 0.1);
             c = flip(b ? 0.8 : 0.2);
             observe(flip(0.5) == c);
             return c;",
        );
    }
}
