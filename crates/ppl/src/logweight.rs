//! Log-space weights and probabilities.
//!
//! Every score in this workspace — choice probabilities, observation
//! likelihoods, trace scores, importance weights — is carried in log space so
//! that the long products of Section 3 ("Probability of a Trace") and the
//! weight estimate of Eq. (8) become sums and never underflow.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// A probability-like quantity stored as its natural logarithm.
///
/// `LogWeight` is a thin newtype over `f64`. Multiplication of probabilities
/// corresponds to [`Add`]; division to [`Sub`]. The zero probability is
/// [`LogWeight::ZERO`] (`-inf`) and the unit probability is
/// [`LogWeight::ONE`] (`0.0`).
///
/// # Examples
///
/// ```
/// use ppl::LogWeight;
/// let half = LogWeight::from_prob(0.5);
/// let quarter = half + half;
/// assert!((quarter.prob() - 0.25).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct LogWeight(pub f64);

impl LogWeight {
    /// The unit weight: probability 1, log value 0.
    pub const ONE: LogWeight = LogWeight(0.0);
    /// The zero weight: probability 0, log value `-inf`.
    pub const ZERO: LogWeight = LogWeight(f64::NEG_INFINITY);

    /// Creates a weight from a linear-space probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is negative or NaN.
    pub fn from_prob(p: f64) -> LogWeight {
        assert!(p >= 0.0, "probability must be non-negative, got {p}");
        LogWeight(p.ln())
    }

    /// Creates a weight directly from a log-space value.
    pub fn from_log(log_p: f64) -> LogWeight {
        LogWeight(log_p)
    }

    /// Returns the log-space value.
    pub fn log(self) -> f64 {
        self.0
    }

    /// Returns the linear-space probability `exp(self)`.
    pub fn prob(self) -> f64 {
        self.0.exp()
    }

    /// Whether this weight represents probability zero.
    pub fn is_zero(self) -> bool {
        self.0 == f64::NEG_INFINITY
    }

    /// Whether the underlying log value is finite (i.e. a positive, finite
    /// probability).
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Whether the log value is NaN (an invalid weight).
    pub fn is_nan(self) -> bool {
        self.0.is_nan()
    }
}

impl Default for LogWeight {
    /// The default weight is the unit weight (probability 1).
    fn default() -> Self {
        LogWeight::ONE
    }
}

impl fmt::Display for LogWeight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "exp({})", self.0)
    }
}

impl Add for LogWeight {
    type Output = LogWeight;
    /// Multiplies the underlying probabilities.
    fn add(self, rhs: LogWeight) -> LogWeight {
        // `-inf + inf` would be NaN; a zero probability multiplied by
        // anything (including an infinite density ratio) stays zero.
        if self.is_zero() || rhs.is_zero() {
            return LogWeight::ZERO;
        }
        LogWeight(self.0 + rhs.0)
    }
}

impl AddAssign for LogWeight {
    fn add_assign(&mut self, rhs: LogWeight) {
        *self = *self + rhs;
    }
}

impl Sub for LogWeight {
    type Output = LogWeight;
    /// Divides the underlying probabilities.
    fn sub(self, rhs: LogWeight) -> LogWeight {
        if self.is_zero() {
            return LogWeight::ZERO;
        }
        LogWeight(self.0 - rhs.0)
    }
}

impl SubAssign for LogWeight {
    fn sub_assign(&mut self, rhs: LogWeight) {
        *self = *self - rhs;
    }
}

impl Neg for LogWeight {
    type Output = LogWeight;
    /// Inverts the underlying probability (reciprocal).
    fn neg(self) -> LogWeight {
        LogWeight(-self.0)
    }
}

impl Mul<f64> for LogWeight {
    type Output = LogWeight;
    /// Raises the underlying probability to the power `rhs`.
    fn mul(self, rhs: f64) -> LogWeight {
        LogWeight(self.0 * rhs)
    }
}

impl Sum for LogWeight {
    /// Product of probabilities (sum in log space).
    fn sum<I: Iterator<Item = LogWeight>>(iter: I) -> LogWeight {
        iter.fold(LogWeight::ONE, |acc, w| acc + w)
    }
}

impl From<f64> for LogWeight {
    /// Interprets the value as a *log-space* weight.
    fn from(log_p: f64) -> Self {
        LogWeight(log_p)
    }
}

/// Computes `log(sum_i exp(x_i))` stably.
///
/// Returns `-inf` for an empty slice or a slice of `-inf` values, and
/// `+inf` if any element is `+inf` (an infinite term dominates the sum
/// rather than producing `inf - inf = NaN` inside the shifted
/// exponentials). NaN elements propagate to a NaN result.
///
/// # Examples
///
/// ```
/// use ppl::logweight::log_sum_exp;
/// let lse = log_sum_exp(&[0.0_f64.ln(), 0.0_f64.ln()]);
/// assert!(lse.is_infinite());
/// let lse = log_sum_exp(&[0.5_f64.ln(), 0.5_f64.ln()]);
/// assert!((lse - 1.0_f64.ln()).abs() < 1e-12);
/// ```
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let mut m = f64::NEG_INFINITY;
    for &x in xs {
        if x.is_nan() {
            return f64::NAN;
        }
        m = m.max(x);
    }
    if m == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    if m == f64::INFINITY {
        return f64::INFINITY;
    }
    let sum: f64 = xs.iter().map(|x| (x - m).exp()).sum();
    m + sum.ln()
}

/// Normalizes a slice of log weights into linear-space probabilities that
/// sum to one. Returns `None` if all weights are zero (or the slice is
/// empty), or if the total is non-finite (a NaN or `+inf` weight), since
/// no proper normalization exists in either case.
pub fn normalize_log_weights(log_ws: &[f64]) -> Option<Vec<f64>> {
    let lse = log_sum_exp(log_ws);
    if !lse.is_finite() {
        return None;
    }
    Some(log_ws.iter().map(|w| (w - lse).exp()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_and_zero() {
        assert_eq!(LogWeight::ONE.prob(), 1.0);
        assert_eq!(LogWeight::ZERO.prob(), 0.0);
        assert!(LogWeight::ZERO.is_zero());
        assert!(!LogWeight::ONE.is_zero());
        assert_eq!(LogWeight::default(), LogWeight::ONE);
    }

    #[test]
    fn add_multiplies() {
        let a = LogWeight::from_prob(0.2);
        let b = LogWeight::from_prob(0.5);
        assert!(((a + b).prob() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn sub_divides() {
        let a = LogWeight::from_prob(0.1);
        let b = LogWeight::from_prob(0.5);
        assert!(((a - b).prob() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn zero_absorbs() {
        let z = LogWeight::ZERO + LogWeight::from_log(f64::INFINITY);
        assert!(z.is_zero());
        let z = LogWeight::from_log(f64::INFINITY) + LogWeight::ZERO;
        assert!(z.is_zero());
    }

    #[test]
    fn neg_inverts() {
        let a = LogWeight::from_prob(0.25);
        assert!(((-a).prob() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn sum_is_product() {
        let total: LogWeight = [0.5, 0.5, 0.5]
            .iter()
            .map(|&p| LogWeight::from_prob(p))
            .sum();
        assert!((total.prob() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn pow_via_mul() {
        let a = LogWeight::from_prob(0.5) * 3.0;
        assert!((a.prob() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn lse_empty_is_neg_inf() {
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
        assert_eq!(
            log_sum_exp(&[f64::NEG_INFINITY, f64::NEG_INFINITY]),
            f64::NEG_INFINITY
        );
    }

    #[test]
    fn lse_large_values_stable() {
        let v = log_sum_exp(&[1000.0, 1000.0]);
        assert!((v - (1000.0 + 2.0_f64.ln())).abs() < 1e-9);
    }

    #[test]
    fn lse_single_element_is_identity() {
        assert_eq!(log_sum_exp(&[-3.25]), -3.25);
        assert_eq!(log_sum_exp(&[f64::NEG_INFINITY]), f64::NEG_INFINITY);
    }

    #[test]
    fn lse_infinite_element_dominates() {
        assert_eq!(log_sum_exp(&[f64::INFINITY, 0.0]), f64::INFINITY);
        assert_eq!(
            log_sum_exp(&[f64::NEG_INFINITY, f64::INFINITY]),
            f64::INFINITY
        );
    }

    #[test]
    fn lse_nan_propagates() {
        assert!(log_sum_exp(&[f64::NAN]).is_nan());
        assert!(log_sum_exp(&[0.0, f64::NAN, -1.0]).is_nan());
        // NaN wins even against an infinite element.
        assert!(log_sum_exp(&[f64::NAN, f64::INFINITY]).is_nan());
    }

    #[test]
    fn normalize_rejects_non_finite_totals() {
        // A +inf or NaN total cannot be normalized into probabilities.
        assert!(normalize_log_weights(&[f64::INFINITY, 0.0]).is_none());
        assert!(normalize_log_weights(&[f64::NAN]).is_none());
        // A single finite weight normalizes to exactly 1.
        assert_eq!(normalize_log_weights(&[-250.0]).unwrap(), vec![1.0]);
    }

    #[test]
    fn normalize_basic() {
        let probs = normalize_log_weights(&[0.0, 0.0]).unwrap();
        assert!((probs[0] - 0.5).abs() < 1e-12);
        assert!((probs[1] - 0.5).abs() < 1e-12);
        assert!(normalize_log_weights(&[]).is_none());
        assert!(normalize_log_weights(&[f64::NEG_INFINITY]).is_none());
    }

    #[test]
    #[should_panic]
    fn negative_prob_panics() {
        let _ = LogWeight::from_prob(-0.1);
    }
}
