//! Lexer for the surface language.

use std::fmt;

use crate::error::PplError;

/// A token kind.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// Identifier or keyword.
    Ident(String),
    /// String literal (used for site annotations).
    Str(String),
    /// `=`
    Assign,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `!`
    Bang,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `?`
    Question,
    /// `:`
    Colon,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `@`
    At,
    /// `..`
    DotDot,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Int(i) => write!(f, "{i}"),
            Tok::Real(r) => write!(f, "{r}"),
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Str(s) => write!(f, "\"{s}\""),
            Tok::Assign => write!(f, "="),
            Tok::EqEq => write!(f, "=="),
            Tok::NotEq => write!(f, "!="),
            Tok::Lt => write!(f, "<"),
            Tok::Le => write!(f, "<="),
            Tok::Gt => write!(f, ">"),
            Tok::Ge => write!(f, ">="),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Star => write!(f, "*"),
            Tok::Slash => write!(f, "/"),
            Tok::Percent => write!(f, "%"),
            Tok::Bang => write!(f, "!"),
            Tok::AndAnd => write!(f, "&&"),
            Tok::OrOr => write!(f, "||"),
            Tok::Question => write!(f, "?"),
            Tok::Colon => write!(f, ":"),
            Tok::Semi => write!(f, ";"),
            Tok::Comma => write!(f, ","),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::LBracket => write!(f, "["),
            Tok::RBracket => write!(f, "]"),
            Tok::At => write!(f, "@"),
            Tok::DotDot => write!(f, ".."),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind.
    pub tok: Tok,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub col: usize,
}

/// Tokenizes `source`.
///
/// # Errors
///
/// Returns [`PplError::Other`] describing the position of any unexpected
/// character or malformed literal.
pub fn lex(source: &str) -> Result<Vec<Token>, PplError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0;
    let mut line = 1;
    let mut col = 1;

    macro_rules! push {
        ($tok:expr, $len:expr) => {{
            tokens.push(Token {
                tok: $tok,
                line,
                col,
            });
            i += $len;
            col += $len;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            ' ' | '\t' | '\r' => {
                i += 1;
                col += 1;
            }
            '/' if next == Some('/') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '=' if next == Some('=') => push!(Tok::EqEq, 2),
            '=' => push!(Tok::Assign, 1),
            '!' if next == Some('=') => push!(Tok::NotEq, 2),
            '!' => push!(Tok::Bang, 1),
            '<' if next == Some('=') => push!(Tok::Le, 2),
            '<' => push!(Tok::Lt, 1),
            '>' if next == Some('=') => push!(Tok::Ge, 2),
            '>' => push!(Tok::Gt, 1),
            '&' if next == Some('&') => push!(Tok::AndAnd, 2),
            '|' if next == Some('|') => push!(Tok::OrOr, 2),
            '+' => push!(Tok::Plus, 1),
            '-' => push!(Tok::Minus, 1),
            '*' => push!(Tok::Star, 1),
            '/' => push!(Tok::Slash, 1),
            '%' => push!(Tok::Percent, 1),
            '?' => push!(Tok::Question, 1),
            ':' => push!(Tok::Colon, 1),
            ';' => push!(Tok::Semi, 1),
            ',' => push!(Tok::Comma, 1),
            '(' => push!(Tok::LParen, 1),
            ')' => push!(Tok::RParen, 1),
            '{' => push!(Tok::LBrace, 1),
            '}' => push!(Tok::RBrace, 1),
            '[' => push!(Tok::LBracket, 1),
            ']' => push!(Tok::RBracket, 1),
            '@' => push!(Tok::At, 1),
            '.' if next == Some('.') => push!(Tok::DotDot, 2),
            '"' => {
                let start = i + 1;
                let mut end = start;
                while end < chars.len() && chars[end] != '"' {
                    end += 1;
                }
                if end >= chars.len() {
                    return Err(PplError::Other(format!(
                        "unterminated string literal at line {line}, column {col}"
                    )));
                }
                let s: String = chars[start..end].iter().collect();
                let len = end - i + 1;
                push!(Tok::Str(s), len);
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut end = i;
                while end < chars.len() && chars[end].is_ascii_digit() {
                    end += 1;
                }
                // A fractional part — but not the `..` of a range.
                let mut is_real = false;
                if end < chars.len()
                    && chars[end] == '.'
                    && chars.get(end + 1).map(|c| c.is_ascii_digit()) == Some(true)
                {
                    is_real = true;
                    end += 1;
                    while end < chars.len() && chars[end].is_ascii_digit() {
                        end += 1;
                    }
                }
                if end < chars.len() && (chars[end] == 'e' || chars[end] == 'E') {
                    let mut exp_end = end + 1;
                    if exp_end < chars.len() && (chars[exp_end] == '+' || chars[exp_end] == '-') {
                        exp_end += 1;
                    }
                    if exp_end < chars.len() && chars[exp_end].is_ascii_digit() {
                        is_real = true;
                        end = exp_end;
                        while end < chars.len() && chars[end].is_ascii_digit() {
                            end += 1;
                        }
                    }
                }
                let text: String = chars[start..end].iter().collect();
                let len = end - start;
                if is_real {
                    let v = text.parse::<f64>().map_err(|_| {
                        PplError::Other(format!("malformed real literal `{text}` at line {line}"))
                    })?;
                    push!(Tok::Real(v), len);
                } else {
                    let v = text.parse::<i64>().map_err(|_| {
                        PplError::Other(format!("malformed int literal `{text}` at line {line}"))
                    })?;
                    push!(Tok::Int(v), len);
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut end = i;
                while end < chars.len() && (chars[end].is_ascii_alphanumeric() || chars[end] == '_')
                {
                    end += 1;
                }
                let text: String = chars[start..end].iter().collect();
                let len = end - start;
                push!(Tok::Ident(text), len);
            }
            other => {
                return Err(PplError::Other(format!(
                    "unexpected character `{other}` at line {line}, column {col}"
                )));
            }
        }
    }
    tokens.push(Token {
        tok: Tok::Eof,
        line,
        col,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_assignment() {
        assert_eq!(
            toks("x = flip(0.5);"),
            vec![
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::Ident("flip".into()),
                Tok::LParen,
                Tok::Real(0.5),
                Tok::RParen,
                Tok::Semi,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn distinguishes_eq_and_assign() {
        assert_eq!(
            toks("a == b = c"),
            vec![
                Tok::Ident("a".into()),
                Tok::EqEq,
                Tok::Ident("b".into()),
                Tok::Assign,
                Tok::Ident("c".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn range_dots_are_not_reals() {
        assert_eq!(
            toks("[0..5)"),
            vec![
                Tok::LBracket,
                Tok::Int(0),
                Tok::DotDot,
                Tok::Int(5),
                Tok::RParen,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("x = 1; // set x\ny = 2;"),
            vec![
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::Int(1),
                Tok::Semi,
                Tok::Ident("y".into()),
                Tok::Assign,
                Tok::Int(2),
                Tok::Semi,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn tracks_line_numbers() {
        let tokens = lex("x = 1;\ny = 2;").unwrap();
        let y = tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("y".into()))
            .unwrap();
        assert_eq!(y.line, 2);
        assert_eq!(y.col, 1);
    }

    #[test]
    fn scientific_notation() {
        assert_eq!(toks("1e3"), vec![Tok::Real(1000.0), Tok::Eof]);
        assert_eq!(toks("2.5e-2"), vec![Tok::Real(0.025), Tok::Eof]);
    }

    #[test]
    fn string_site_annotations() {
        assert_eq!(
            toks("flip(0.5) @ \"alpha\""),
            vec![
                Tok::Ident("flip".into()),
                Tok::LParen,
                Tok::Real(0.5),
                Tok::RParen,
                Tok::At,
                Tok::Str("alpha".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("x = #").is_err());
        assert!(lex("\"unterminated").is_err());
    }

    #[test]
    fn logical_operators() {
        assert_eq!(
            toks("a && b || !c"),
            vec![
                Tok::Ident("a".into()),
                Tok::AndAnd,
                Tok::Ident("b".into()),
                Tok::OrOr,
                Tok::Bang,
                Tok::Ident("c".into()),
                Tok::Eof
            ]
        );
    }
}
