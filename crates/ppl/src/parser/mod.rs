//! Parser for the surface language.
//!
//! The concrete syntax mirrors the paper's programs:
//!
//! ```text
//! burglary = flip(0.02) @ alpha;
//! pAlarm = burglary ? 0.9 : 0.01;
//! alarm = flip(pAlarm) @ beta;
//! if alarm { pMaryWakes = 0.8; } else { pMaryWakes = 0.05; }
//! observe(flip(pMaryWakes) == 1) @ o;
//! return burglary;
//! ```
//!
//! Random expressions may carry a site annotation `@ label`; unannotated
//! sites get deterministic labels `family#k` in parse order.

pub mod lexer;

use std::collections::HashMap;
use std::fmt;

use crate::ast::{BinOp, Block, Builtin, Expr, Program, RandExpr, RandKind, SiteId, Stmt, UnOp};
use crate::error::PplError;
use crate::value::Value;

use lexer::{lex, Tok, Token};

/// A 1-based source position (line and column) of a statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Span {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub col: usize,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Source spans for a parsed program, kept out of the AST so structural
/// equality of [`Program`]s ignores formatting.
///
/// `stmts` holds one span per statement in *pre-order* (the order
/// statements are entered during parsing: a statement before the
/// statements of its sub-blocks). The same pre-order indexing is used by
/// [`crate::check::check_with_spans`] and [`crate::analysis`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanTable {
    /// Per-statement spans, indexed by statement pre-order.
    pub stmts: Vec<Span>,
    /// Position of the `return` expression, if present.
    pub ret: Option<Span>,
}

/// Parses a complete program.
///
/// # Errors
///
/// Returns [`PplError::Other`] with line/column information on syntax
/// errors.
///
/// # Examples
///
/// ```
/// let program = ppl::parse("x = flip(0.5) @ x; return x;")?;
/// assert_eq!(program.sites().len(), 1);
/// # Ok::<(), ppl::PplError>(())
/// ```
pub fn parse(source: &str) -> Result<Program, PplError> {
    parse_with_spans(source).map(|(program, _)| program)
}

/// Parses a complete program together with its statement [`SpanTable`].
///
/// # Errors
///
/// Returns [`PplError::Other`] with line/column information on syntax
/// errors.
///
/// # Examples
///
/// ```
/// let (program, spans) = ppl::parser::parse_with_spans("x = flip(0.5);\ny = x;\nreturn y;")?;
/// assert_eq!(spans.stmts.len(), 2);
/// assert_eq!(spans.stmts[1].line, 2);
/// # Ok::<(), ppl::PplError>(())
/// ```
pub fn parse_with_spans(source: &str) -> Result<(Program, SpanTable), PplError> {
    let tokens = lex(source)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        site_counters: HashMap::new(),
        spans: SpanTable::default(),
    };
    let program = parser.program()?;
    parser.expect(&Tok::Eof)?;
    Ok((program, parser.spans))
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    site_counters: HashMap<&'static str, usize>,
    spans: SpanTable,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].tok
    }

    fn advance(&mut self) -> Tok {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, msg: &str) -> PplError {
        let t = &self.tokens[self.pos];
        PplError::Other(format!(
            "parse error at line {}, column {}: {msg} (found `{}`)",
            t.line, t.col, t.tok
        ))
    }

    fn expect(&mut self, tok: &Tok) -> Result<(), PplError> {
        if self.peek() == tok {
            self.advance();
            Ok(())
        } else {
            Err(self.error(&format!("expected `{tok}`")))
        }
    }

    fn eat_ident(&mut self) -> Result<String, PplError> {
        match self.peek().clone() {
            Tok::Ident(name) => {
                self.advance();
                Ok(name)
            }
            _ => Err(self.error("expected identifier")),
        }
    }

    fn is_keyword(name: &str) -> bool {
        matches!(
            name,
            "skip"
                | "observe"
                | "if"
                | "else"
                | "while"
                | "for"
                | "in"
                | "return"
                | "true"
                | "false"
                | "array"
        )
    }

    fn fresh_site(&mut self, family: &'static str) -> SiteId {
        let n = self.site_counters.entry(family).or_insert(0);
        *n += 1;
        SiteId::new(&format!("{family}#{n}"))
    }

    fn site_annotation(&mut self, family: &'static str) -> Result<SiteId, PplError> {
        if self.peek() == &Tok::At {
            self.advance();
            match self.peek().clone() {
                Tok::Ident(label) => {
                    self.advance();
                    Ok(SiteId::new(&label))
                }
                Tok::Str(label) => {
                    self.advance();
                    Ok(SiteId::new(&label))
                }
                _ => Err(self.error("expected site label after `@`")),
            }
        } else {
            Ok(self.fresh_site(family))
        }
    }

    fn program(&mut self) -> Result<Program, PplError> {
        let mut stmts = Vec::new();
        let mut ret = None;
        while self.peek() != &Tok::Eof {
            if self.peek() == &Tok::Ident("return".into()) {
                self.spans.ret = Some(self.here());
                self.advance();
                let e = self.expr()?;
                self.expect(&Tok::Semi)?;
                ret = Some(e);
                break;
            }
            stmts.push(self.stmt()?);
        }
        Ok(Program::new(Block::new(stmts), ret))
    }

    fn block(&mut self) -> Result<Block, PplError> {
        self.expect(&Tok::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != &Tok::RBrace && self.peek() != &Tok::Eof {
            stmts.push(self.stmt()?);
        }
        self.expect(&Tok::RBrace)?;
        Ok(Block::new(stmts))
    }

    fn here(&self) -> Span {
        let t = &self.tokens[self.pos];
        Span {
            line: t.line,
            col: t.col,
        }
    }

    fn stmt(&mut self) -> Result<Stmt, PplError> {
        // Statements are recorded in pre-order: a statement's span lands
        // before the spans of the statements inside its sub-blocks.
        self.spans.stmts.push(self.here());
        match self.peek().clone() {
            Tok::Ident(name) if name == "skip" => {
                self.advance();
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Skip)
            }
            Tok::Ident(name) if name == "observe" => {
                self.advance();
                self.expect(&Tok::LParen)?;
                let rand = self.rand_expr_required()?;
                self.expect(&Tok::EqEq)?;
                let value = self.expr()?;
                self.expect(&Tok::RParen)?;
                // Optional site annotation overrides the one parsed inside.
                let rand = if self.peek() == &Tok::At {
                    let site = self.site_annotation("observe")?;
                    RandExpr { site, ..rand }
                } else {
                    rand
                };
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Observe(rand, value))
            }
            Tok::Ident(name) if name == "if" => {
                self.advance();
                let cond = self.expr()?;
                let then_b = self.block()?;
                let else_b = if self.peek() == &Tok::Ident("else".into()) {
                    self.advance();
                    if self.peek() == &Tok::Ident("if".into()) {
                        // else-if chains desugar into a nested block.
                        Block::new(vec![self.stmt()?])
                    } else {
                        self.block()?
                    }
                } else {
                    Block::empty()
                };
                Ok(Stmt::If(cond, then_b, else_b))
            }
            Tok::Ident(name) if name == "while" => {
                self.advance();
                let cond = self.expr()?;
                let body = self.block()?;
                Ok(Stmt::While(cond, body))
            }
            Tok::Ident(name) if name == "for" => {
                self.advance();
                let var = self.eat_ident()?;
                match self.peek().clone() {
                    Tok::Ident(kw) if kw == "in" => {
                        self.advance();
                    }
                    _ => return Err(self.error("expected `in`")),
                }
                self.expect(&Tok::LBracket)?;
                let lo = self.expr()?;
                self.expect(&Tok::DotDot)?;
                let hi = self.expr()?;
                self.expect(&Tok::RParen)?;
                let body = self.block()?;
                Ok(Stmt::For(var, lo, hi, body))
            }
            Tok::Ident(name) => {
                if Self::is_keyword(&name) {
                    return Err(self.error("unexpected keyword"));
                }
                self.advance();
                if self.peek() == &Tok::LBracket {
                    self.advance();
                    let idx = self.expr()?;
                    self.expect(&Tok::RBracket)?;
                    self.expect(&Tok::Assign)?;
                    let value = self.expr()?;
                    self.expect(&Tok::Semi)?;
                    Ok(Stmt::AssignIndex(name, idx, value))
                } else {
                    self.expect(&Tok::Assign)?;
                    let value = self.expr()?;
                    self.expect(&Tok::Semi)?;
                    Ok(Stmt::Assign(name, value))
                }
            }
            _ => Err(self.error("expected statement")),
        }
    }

    fn rand_expr_required(&mut self) -> Result<RandExpr, PplError> {
        // Parse above equality precedence so the observation's `==` is not
        // swallowed into the expression.
        let e = self.rel_expr()?;
        match e {
            Expr::Random(r) => Ok(r),
            _ => Err(self.error("observe requires a random expression on the left of `==`")),
        }
    }

    fn expr(&mut self) -> Result<Expr, PplError> {
        self.ternary()
    }

    fn ternary(&mut self) -> Result<Expr, PplError> {
        let cond = self.or_expr()?;
        if self.peek() == &Tok::Question {
            self.advance();
            let t = self.expr()?;
            self.expect(&Tok::Colon)?;
            let e = self.expr()?;
            Ok(cond.ternary(t, e))
        } else {
            Ok(cond)
        }
    }

    fn or_expr(&mut self) -> Result<Expr, PplError> {
        let mut lhs = self.and_expr()?;
        while self.peek() == &Tok::OrOr {
            self.advance();
            let rhs = self.and_expr()?;
            lhs = Expr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, PplError> {
        let mut lhs = self.eq_expr()?;
        while self.peek() == &Tok::AndAnd {
            self.advance();
            let rhs = self.eq_expr()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn eq_expr(&mut self) -> Result<Expr, PplError> {
        let mut lhs = self.rel_expr()?;
        loop {
            let op = match self.peek() {
                Tok::EqEq => BinOp::Eq,
                Tok::NotEq => BinOp::Ne,
                _ => break,
            };
            self.advance();
            let rhs = self.rel_expr()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn rel_expr(&mut self) -> Result<Expr, PplError> {
        let mut lhs = self.add_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Lt => BinOp::Lt,
                Tok::Le => BinOp::Le,
                Tok::Gt => BinOp::Gt,
                Tok::Ge => BinOp::Ge,
                _ => break,
            };
            self.advance();
            let rhs = self.add_expr()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<Expr, PplError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.advance();
            let rhs = self.mul_expr()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, PplError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Mod,
                _ => break,
            };
            self.advance();
            let rhs = self.unary_expr()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, PplError> {
        match self.peek() {
            Tok::Minus => {
                self.advance();
                let e = self.unary_expr()?;
                Ok(Expr::Unary(UnOp::Neg, Box::new(e)))
            }
            Tok::Bang => {
                self.advance();
                let e = self.unary_expr()?;
                Ok(Expr::Unary(UnOp::Not, Box::new(e)))
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr, PplError> {
        let mut e = self.primary()?;
        while self.peek() == &Tok::LBracket {
            self.advance();
            let idx = self.expr()?;
            self.expect(&Tok::RBracket)?;
            e = e.index(idx);
        }
        Ok(e)
    }

    fn args(&mut self) -> Result<Vec<Expr>, PplError> {
        self.expect(&Tok::LParen)?;
        let mut args = Vec::new();
        if self.peek() != &Tok::RParen {
            args.push(self.expr()?);
            while self.peek() == &Tok::Comma {
                self.advance();
                args.push(self.expr()?);
            }
        }
        self.expect(&Tok::RParen)?;
        Ok(args)
    }

    fn rand_call(
        &mut self,
        family: &'static str,
        arity: Option<usize>,
    ) -> Result<(Vec<Expr>, SiteId), PplError> {
        let args = self.args()?;
        if let Some(n) = arity {
            if args.len() != n {
                return Err(self.error(&format!("{family} expects {n} argument(s)")));
            }
        }
        let site = self.site_annotation(family)?;
        Ok((args, site))
    }

    fn primary(&mut self) -> Result<Expr, PplError> {
        match self.peek().clone() {
            Tok::Int(i) => {
                self.advance();
                Ok(Expr::Const(Value::Int(i)))
            }
            Tok::Real(r) => {
                self.advance();
                Ok(Expr::Const(Value::Real(r)))
            }
            Tok::LParen => {
                self.advance();
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => match name.as_str() {
                "true" => {
                    self.advance();
                    Ok(Expr::Const(Value::Bool(true)))
                }
                "false" => {
                    self.advance();
                    Ok(Expr::Const(Value::Bool(false)))
                }
                "flip" => {
                    self.advance();
                    let (mut args, site) = self.rand_call("flip", Some(1))?;
                    Ok(Expr::Random(RandExpr {
                        site,
                        kind: RandKind::Flip(Box::new(args.remove(0))),
                    }))
                }
                "uniform" | "uniformInt" => {
                    self.advance();
                    let (mut args, site) = self.rand_call("uniform", Some(2))?;
                    let lo = args.remove(0);
                    let hi = args.remove(0);
                    Ok(Expr::Random(RandExpr {
                        site,
                        kind: RandKind::UniformInt(Box::new(lo), Box::new(hi)),
                    }))
                }
                "uniformReal" => {
                    self.advance();
                    let (mut args, site) = self.rand_call("uniformReal", Some(2))?;
                    let lo = args.remove(0);
                    let hi = args.remove(0);
                    Ok(Expr::Random(RandExpr {
                        site,
                        kind: RandKind::UniformReal(Box::new(lo), Box::new(hi)),
                    }))
                }
                "gauss" | "normal" => {
                    self.advance();
                    let (mut args, site) = self.rand_call("gauss", Some(2))?;
                    let mean = args.remove(0);
                    let std = args.remove(0);
                    Ok(Expr::Random(RandExpr {
                        site,
                        kind: RandKind::Gauss(Box::new(mean), Box::new(std)),
                    }))
                }
                "poisson" => {
                    self.advance();
                    let (mut args, site) = self.rand_call("poisson", Some(1))?;
                    Ok(Expr::Random(RandExpr {
                        site,
                        kind: RandKind::Poisson(Box::new(args.remove(0))),
                    }))
                }
                "geometric" => {
                    self.advance();
                    let (mut args, site) = self.rand_call("geometric", Some(1))?;
                    Ok(Expr::Random(RandExpr {
                        site,
                        kind: RandKind::GeometricDist(Box::new(args.remove(0))),
                    }))
                }
                "beta" => {
                    self.advance();
                    let (mut args, site) = self.rand_call("beta", Some(2))?;
                    let a = args.remove(0);
                    let b = args.remove(0);
                    Ok(Expr::Random(RandExpr {
                        site,
                        kind: RandKind::Beta(Box::new(a), Box::new(b)),
                    }))
                }
                "exponential" => {
                    self.advance();
                    let (mut args, site) = self.rand_call("exponential", Some(1))?;
                    Ok(Expr::Random(RandExpr {
                        site,
                        kind: RandKind::Exponential(Box::new(args.remove(0))),
                    }))
                }
                "categorical" => {
                    self.advance();
                    let (args, site) = self.rand_call("categorical", None)?;
                    if args.is_empty() {
                        return Err(self.error("categorical needs at least one weight"));
                    }
                    Ok(Expr::Random(RandExpr {
                        site,
                        kind: RandKind::Categorical(args),
                    }))
                }
                "array" => {
                    self.advance();
                    let mut args = self.args()?;
                    if args.len() != 2 {
                        return Err(self.error("array expects 2 arguments: array(n, init)"));
                    }
                    let n = args.remove(0);
                    let init = args.remove(0);
                    Ok(Expr::ArrayInit(Box::new(n), Box::new(init)))
                }
                _ => {
                    if let Some(builtin) = Builtin::from_name(&name) {
                        if self.peek2() == &Tok::LParen {
                            self.advance();
                            let args = self.args()?;
                            if args.len() != builtin.arity() {
                                return Err(self.error(&format!(
                                    "{} expects {} argument(s)",
                                    builtin.name(),
                                    builtin.arity()
                                )));
                            }
                            return Ok(Expr::Call(builtin, args));
                        }
                    }
                    if Self::is_keyword(&name) {
                        return Err(self.error("unexpected keyword in expression"));
                    }
                    self.advance();
                    Ok(Expr::var(&name))
                }
            },
            _ => Err(self.error("expected expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr;
    use crate::handlers::score;
    use crate::trace::ChoiceMap;

    #[test]
    fn parses_burglary_original() {
        let src = r#"
            burglary = flip(0.02) @ alpha;
            pAlarm = burglary ? 0.9 : 0.01;
            alarm = flip(pAlarm) @ beta;
            if alarm { pMaryWakes = 0.8; } else { pMaryWakes = 0.05; }
            observe(flip(pMaryWakes) == 1) @ o;
            return burglary;
        "#;
        let p = parse(src).unwrap();
        let sites: Vec<String> = p.sites().iter().map(|s| s.to_string()).collect();
        assert_eq!(sites, ["alpha", "beta", "o"]);
        // Score the trace [alpha -> 1, beta -> 1]: 0.02 * 0.9 * 0.8.
        let mut map = ChoiceMap::new();
        map.insert(addr!["alpha"], Value::Bool(true));
        map.insert(addr!["beta"], Value::Bool(true));
        let t = score(&p, &map).unwrap();
        assert!((t.score().prob() - 0.02 * 0.9 * 0.8).abs() < 1e-12);
    }

    #[test]
    fn auto_sites_are_deterministic() {
        let p = parse("x = flip(0.5); y = flip(0.5); return x;").unwrap();
        let sites: Vec<String> = p.sites().iter().map(|s| s.to_string()).collect();
        assert_eq!(sites, ["flip#1", "flip#2"]);
    }

    #[test]
    fn precedence_is_conventional() {
        let p = parse("x = 1 + 2 * 3; return x;").unwrap();
        let t = score(&p, &ChoiceMap::new()).unwrap();
        assert_eq!(t.return_value(), Some(&Value::Int(7)));
        let p = parse("x = (1 + 2) * 3; return x;").unwrap();
        let t = score(&p, &ChoiceMap::new()).unwrap();
        assert_eq!(t.return_value(), Some(&Value::Int(9)));
    }

    #[test]
    fn ternary_parses_right_associative() {
        let p = parse("x = 1 < 2 ? 10 : 20; return x;").unwrap();
        let t = score(&p, &ChoiceMap::new()).unwrap();
        assert_eq!(t.return_value(), Some(&Value::Int(10)));
    }

    #[test]
    fn for_loop_and_arrays() {
        let src = r#"
            data = array(4, 0);
            for i in [0..4) { data[i] = i * i; }
            return data[3];
        "#;
        let p = parse(src).unwrap();
        let t = score(&p, &ChoiceMap::new()).unwrap();
        assert_eq!(t.return_value(), Some(&Value::Int(9)));
    }

    #[test]
    fn while_loop_parses() {
        let src = r#"
            n = 0;
            while n < 5 { n = n + 1; }
            return n;
        "#;
        let p = parse(src).unwrap();
        let t = score(&p, &ChoiceMap::new()).unwrap();
        assert_eq!(t.return_value(), Some(&Value::Int(5)));
    }

    #[test]
    fn else_if_chains() {
        let src = r#"
            x = 3;
            if x == 1 { y = 10; } else if x == 3 { y = 30; } else { y = 0; }
            return y;
        "#;
        let p = parse(src).unwrap();
        let t = score(&p, &ChoiceMap::new()).unwrap();
        assert_eq!(t.return_value(), Some(&Value::Int(30)));
    }

    #[test]
    fn observe_requires_random_lhs() {
        assert!(parse("observe(x == 1);").is_err());
        assert!(parse("observe(flip(0.5) == 1);").is_ok());
    }

    #[test]
    fn builtins_parse_as_calls() {
        let p = parse("x = sqrt(16); return max(x, 5);").unwrap();
        let t = score(&p, &ChoiceMap::new()).unwrap();
        assert_eq!(t.return_value(), Some(&Value::Real(5.0)));
    }

    #[test]
    fn builtin_names_can_be_variables() {
        // `len` used as a plain variable, not a call.
        let p = parse("len = 3; return len;").unwrap();
        let t = score(&p, &ChoiceMap::new()).unwrap();
        assert_eq!(t.return_value(), Some(&Value::Int(3)));
    }

    #[test]
    fn error_messages_carry_position() {
        let err = parse("x = ;").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 1"), "{msg}");
    }

    #[test]
    fn negative_literals_and_unary() {
        let p = parse("x = -5; y = !false; return x + (y ? 1 : 0);").unwrap();
        let t = score(&p, &ChoiceMap::new()).unwrap();
        assert_eq!(t.return_value(), Some(&Value::Int(-4)));
    }

    #[test]
    fn gmm_listing5_parses() {
        // Listing 5, adapted: sigma and n as constants here.
        let src = r#"
            sigma = 10.0;
            n = 5;
            k = 10;
            centers = array(k, 0);
            for i in [0..k) { centers[i] = gauss(0, sigma) @ center; }
            data = array(n, 0);
            for i in [0..n) { data[i] = gauss(centers[uniform(0, k - 1) @ pick], 1) @ point; }
            return data;
        "#;
        let p = parse(src).unwrap();
        let sites: Vec<String> = p.sites().iter().map(|s| s.to_string()).collect();
        assert_eq!(sites, ["center", "pick", "point"]);
    }
}
