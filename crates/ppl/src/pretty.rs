//! Pretty-printer: renders ASTs back to parsable surface syntax.

use std::fmt;

use crate::ast::{BinOp, Block, Expr, Program, RandExpr, RandKind, Stmt, UnOp};

fn bin_op_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Mod => "%",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::And => "&&",
        BinOp::Or => "||",
    }
}

fn write_rand(f: &mut fmt::Formatter<'_>, r: &RandExpr) -> fmt::Result {
    match &r.kind {
        RandKind::Flip(p) => write!(f, "flip({p})")?,
        RandKind::UniformInt(lo, hi) => write!(f, "uniform({lo}, {hi})")?,
        RandKind::UniformReal(lo, hi) => write!(f, "uniformReal({lo}, {hi})")?,
        RandKind::Gauss(m, s) => write!(f, "gauss({m}, {s})")?,
        RandKind::Poisson(l) => write!(f, "poisson({l})")?,
        RandKind::GeometricDist(p) => write!(f, "geometric({p})")?,
        RandKind::Beta(a, b) => write!(f, "beta({a}, {b})")?,
        RandKind::Exponential(r) => write!(f, "exponential({r})")?,
        RandKind::Categorical(ws) => {
            write!(f, "categorical(")?;
            for (i, w) in ws.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{w}")?;
            }
            write!(f, ")")?;
        }
    }
    write!(f, " @ \"{}\"", r.site)
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Var(x) => write!(f, "{x}"),
            Expr::Unary(UnOp::Neg, e) => write!(f, "(-{e})"),
            Expr::Unary(UnOp::Not, e) => write!(f, "(!{e})"),
            Expr::Binary(op, a, b) => write!(f, "({a} {} {b})", bin_op_str(*op)),
            Expr::Index(a, i) => write!(f, "{a}[{i}]"),
            Expr::ArrayInit(n, init) => write!(f, "array({n}, {init})"),
            Expr::Call(b, args) => {
                write!(f, "{}(", b.name())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::Ternary(c, t, e) => write!(f, "({c} ? {t} : {e})"),
            Expr::Random(r) => write_rand(f, r),
        }
    }
}

fn write_block(f: &mut fmt::Formatter<'_>, block: &Block, indent: usize) -> fmt::Result {
    writeln!(f, "{{")?;
    for stmt in block.stmts() {
        write_stmt(f, stmt, indent + 1)?;
    }
    write!(f, "{}}}", "  ".repeat(indent))
}

fn write_stmt(f: &mut fmt::Formatter<'_>, stmt: &Stmt, indent: usize) -> fmt::Result {
    let pad = "  ".repeat(indent);
    match stmt {
        Stmt::Skip => writeln!(f, "{pad}skip;"),
        Stmt::Assign(x, e) => writeln!(f, "{pad}{x} = {e};"),
        Stmt::AssignIndex(x, i, e) => writeln!(f, "{pad}{x}[{i}] = {e};"),
        Stmt::If(c, t, e) => {
            write!(f, "{pad}if {c} ")?;
            write_block(f, t, indent)?;
            if !e.stmts().is_empty() {
                write!(f, " else ")?;
                write_block(f, e, indent)?;
            }
            writeln!(f)
        }
        Stmt::While(c, b) => {
            write!(f, "{pad}while {c} ")?;
            write_block(f, b, indent)?;
            writeln!(f)
        }
        Stmt::For(x, lo, hi, b) => {
            write!(f, "{pad}for {x} in [{lo}..{hi}) ")?;
            write_block(f, b, indent)?;
            writeln!(f)
        }
        Stmt::Observe(r, e) => {
            write!(f, "{pad}observe(")?;
            write_rand(f, r)?;
            writeln!(f, " == {e});")
        }
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for stmt in self.body.stmts() {
            write_stmt(f, stmt, 0)?;
        }
        if let Some(ret) = &self.ret {
            writeln!(f, "return {ret};")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse;

    /// Parsing the pretty-printed text yields the same AST (after one
    /// round, printing is a fixed point because site labels become
    /// explicit).
    #[test]
    fn round_trip_is_identity_on_ast() {
        let sources = [
            "x = flip(0.5) @ a; return x;",
            "if flip(0.1) @ c { y = 1; } else { y = 2; } return y;",
            "n = 0; while n < 3 { n = n + 1; } return n;",
            "a = array(3, 0); for i in [0..3) { a[i] = gauss(0, 1) @ g; } return a;",
            "observe(flip(0.3) @ o == 1);",
            "x = 1 < 2 ? sqrt(4.0) : 0; return -x;",
            "x = uniformReal(0.0, 2.0) @ u; observe(categorical(0.5, 0.5) @ k == 1);",
        ];
        for src in sources {
            let p1 = parse(src).unwrap();
            let printed = p1.to_string();
            let p2 = parse(&printed).unwrap();
            assert_eq!(p1, p2, "round-trip failed for `{src}`:\n{printed}");
            // And printing is idempotent.
            assert_eq!(printed, p2.to_string());
        }
    }

    #[test]
    fn printed_burglary_mentions_sites() {
        let src = "burglary = flip(0.02) @ alpha; return burglary;";
        let printed = parse(src).unwrap().to_string();
        assert!(printed.contains("@ \"alpha\""), "{printed}");
    }
}
