//! Small-step operational semantics of the core language (Figure 2).
//!
//! This module is a direct, executable transcription of the paper's
//! transition relation `(P, σ) →_p^t (P', σ')`: each step reduces the
//! leftmost redex, either deterministically (probability 1, empty trace),
//! by a random choice (one successor per support element `v`, probability
//! `Pr[v]`, trace `[v]`), or by an observation (probability of the observed
//! outcome, empty trace).
//!
//! It covers the paper's core fragment (Section 3: `skip`, assignment,
//! sequencing, `if`, `while`, `observe`, arithmetic, `flip`/`uniform`) and
//! exists as a *reference semantics*: the test suite checks that
//! exhaustively enumerating executions here agrees exactly with the
//! big-step traced interpreter.

use std::collections::HashMap;

use crate::ast::{Block, Expr, Program, RandExpr, RandKind, Stmt};
use crate::dist::Dist;
use crate::error::PplError;
use crate::value::Value;

/// A completed execution of the small-step machine.
#[derive(Debug, Clone)]
pub struct Run {
    /// The trace: values of random expressions in evaluation order.
    pub trace: Vec<Value>,
    /// The (sub-)probability `p_0 · p_1 ⋯ p_n` of this execution.
    pub prob: f64,
    /// The final state `σ_n`.
    pub env: HashMap<String, Value>,
    /// The return value, if the program has a `return` expression.
    pub return_value: Option<Value>,
}

/// Exhaustively enumerates all executions of `program` under the
/// small-step semantics.
///
/// # Errors
///
/// Returns an error if the program uses constructs outside the core
/// fragment (arrays, `for`, builtins, continuous distributions), or if an
/// execution exceeds `max_steps`.
pub fn enumerate_executions(program: &Program, max_steps: usize) -> Result<Vec<Run>, PplError> {
    let initial = Config {
        stmts: flatten(&program.body),
        env: HashMap::new(),
        trace: Vec::new(),
        prob: 1.0,
        steps: 0,
    };
    let mut done = Vec::new();
    let mut work = vec![initial];
    while let Some(config) = work.pop() {
        if config.steps > max_steps {
            return Err(PplError::FuelExhausted {
                budget: max_steps as u64,
            });
        }
        if config.stmts.is_empty() {
            // `skip` marks the end of execution (the paper has no rule for
            // it); evaluate the return expression under the final state.
            let return_value = match &program.ret {
                Some(e) => Some(eval_pure(e, &config.env)?),
                None => None,
            };
            done.push(Run {
                trace: config.trace,
                prob: config.prob,
                env: config.env,
                return_value,
            });
            continue;
        }
        work.extend(step(config)?);
    }
    Ok(done)
}

#[derive(Debug, Clone)]
struct Config {
    /// Remaining statements (the continuation `P`).
    stmts: Vec<Stmt>,
    env: HashMap<String, Value>,
    trace: Vec<Value>,
    prob: f64,
    steps: usize,
}

fn flatten(block: &Block) -> Vec<Stmt> {
    block.stmts().to_vec()
}

/// One application of the transition relation: all successors of `config`.
fn step(mut config: Config) -> Result<Vec<Config>, PplError> {
    config.steps += 1;
    let stmt = config.stmts.remove(0);
    match stmt {
        // (skip; P2, σ) → (P2, σ): dropping the head is exactly that rule.
        Stmt::Skip => Ok(vec![config]),
        Stmt::Assign(x, e) => match step_expr(&e, &config.env)? {
            ExprStep::Value(v) => {
                // (x = v, σ) → (skip, σ[x ↦ v])
                config.env.insert(x, v);
                Ok(vec![config])
            }
            ExprStep::Reduced(e2) => {
                config.stmts.insert(0, Stmt::Assign(x, e2));
                Ok(vec![config])
            }
            ExprStep::Branch(alternatives) => Ok(alternatives
                .into_iter()
                .map(|(e2, value, p)| {
                    let mut c = config.clone();
                    c.stmts.insert(0, Stmt::Assign(x.clone(), e2));
                    c.trace.push(value);
                    c.prob *= p;
                    c
                })
                .collect()),
        },
        Stmt::If(cond, then_b, else_b) => match step_expr(&cond, &config.env)? {
            ExprStep::Value(v) => {
                // (if v {P1} else {P2}, σ) → (P1, σ) when v ≠ 0
                let branch = if v.truthy()? { then_b } else { else_b };
                let mut rest = flatten(&branch);
                rest.extend(config.stmts);
                config.stmts = rest;
                Ok(vec![config])
            }
            ExprStep::Reduced(c2) => {
                config.stmts.insert(0, Stmt::If(c2, then_b, else_b));
                Ok(vec![config])
            }
            ExprStep::Branch(alternatives) => Ok(alternatives
                .into_iter()
                .map(|(c2, value, p)| {
                    let mut c = config.clone();
                    c.stmts
                        .insert(0, Stmt::If(c2, then_b.clone(), else_b.clone()));
                    c.trace.push(value);
                    c.prob *= p;
                    c
                })
                .collect()),
        },
        Stmt::While(cond, body) => {
            // while e {P} → if e { P; while e {P} } else { skip }
            let unrolled = Stmt::If(
                cond.clone(),
                Block::new({
                    let mut stmts = flatten(&body);
                    stmts.push(Stmt::While(cond, body));
                    stmts
                }),
                Block::empty(),
            );
            config.stmts.insert(0, unrolled);
            Ok(vec![config])
        }
        Stmt::Observe(rand, value_expr) => {
            // First reduce the distribution parameters, then the compared
            // expression, then apply the observation rule
            // (observe(flip(v) == 1), σ) →_v (skip, σ).
            match step_rand_params(&rand, &config.env)? {
                RandStep::Reduced(r2) => {
                    config.stmts.insert(0, Stmt::Observe(r2, value_expr));
                    Ok(vec![config])
                }
                RandStep::Ready(dist) => match step_expr(&value_expr, &config.env)? {
                    ExprStep::Value(v) => {
                        let p = dist.log_prob(&v).prob();
                        config.prob *= p;
                        Ok(vec![config])
                    }
                    ExprStep::Reduced(e2) => {
                        config.stmts.insert(0, Stmt::Observe(rand, e2));
                        Ok(vec![config])
                    }
                    ExprStep::Branch(alternatives) => Ok(alternatives
                        .into_iter()
                        .map(|(e2, value, p)| {
                            let mut c = config.clone();
                            c.stmts.insert(0, Stmt::Observe(rand.clone(), e2));
                            c.trace.push(value);
                            c.prob *= p;
                            c
                        })
                        .collect()),
                },
            }
        }
        Stmt::AssignIndex(..) | Stmt::For(..) => Err(PplError::Other(
            "small-step semantics covers only the core fragment (no arrays or for loops)"
                .to_string(),
        )),
    }
}

enum ExprStep {
    /// The expression is a value.
    Value(Value),
    /// One deterministic reduction was applied.
    Reduced(Expr),
    /// A random choice: `(residual expression, emitted value, probability)`
    /// per support element.
    Branch(Vec<(Expr, Value, f64)>),
}

enum RandStep {
    Reduced(RandExpr),
    Ready(Dist),
}

/// Reduces the parameters of a random expression by one step, or builds
/// its distribution once they are values.
fn step_rand_params(rand: &RandExpr, env: &HashMap<String, Value>) -> Result<RandStep, PplError> {
    let reduce = |e: &Expr| -> Result<Result<f64, Expr>, PplError> {
        match step_expr(e, env)? {
            ExprStep::Value(v) => Ok(Ok(v.as_real()?)),
            ExprStep::Reduced(e2) => Ok(Err(e2)),
            ExprStep::Branch(_) => Err(PplError::Other(
                "nested random expressions in distribution parameters are outside the core \
                 fragment"
                    .to_string(),
            )),
        }
    };
    match &rand.kind {
        RandKind::Flip(p) => match reduce(p)? {
            Ok(p) => Ok(RandStep::Ready(Dist::try_flip(p)?)),
            Err(p2) => Ok(RandStep::Reduced(RandExpr {
                site: rand.site.clone(),
                kind: RandKind::Flip(Box::new(p2)),
            })),
        },
        RandKind::UniformInt(lo, hi) => match reduce(lo)? {
            Ok(lo_v) => match reduce(hi)? {
                Ok(hi_v) => Ok(RandStep::Ready(Dist::try_uniform_int(
                    lo_v as i64,
                    hi_v as i64,
                )?)),
                Err(hi2) => Ok(RandStep::Reduced(RandExpr {
                    site: rand.site.clone(),
                    kind: RandKind::UniformInt(lo.clone(), Box::new(hi2)),
                })),
            },
            Err(lo2) => Ok(RandStep::Reduced(RandExpr {
                site: rand.site.clone(),
                kind: RandKind::UniformInt(Box::new(lo2), hi.clone()),
            })),
        },
        _ => Err(PplError::Other(format!(
            "small-step semantics covers only flip and uniform, got {}",
            rand.kind.family()
        ))),
    }
}

/// Reduces the leftmost redex of `expr` by one step.
fn step_expr(expr: &Expr, env: &HashMap<String, Value>) -> Result<ExprStep, PplError> {
    match expr {
        Expr::Const(v) => Ok(ExprStep::Value(v.clone())),
        // (P[x], σ) → (P[σ(x)], σ)
        Expr::Var(x) => {
            let v = env
                .get(x)
                .ok_or_else(|| PplError::UnboundVariable(x.clone()))?;
            Ok(ExprStep::Reduced(Expr::Const(v.clone())))
        }
        // (P[⊖v], σ) → (P[eval(⊖v)], σ)
        Expr::Unary(op, e) => match step_expr(e, env)? {
            ExprStep::Value(v) => {
                let r = crate::interp::apply_unary(*op, &v)?;
                Ok(ExprStep::Reduced(Expr::Const(r)))
            }
            ExprStep::Reduced(e2) => Ok(ExprStep::Reduced(Expr::Unary(*op, Box::new(e2)))),
            ExprStep::Branch(alts) => Ok(ExprStep::Branch(
                alts.into_iter()
                    .map(|(e2, v, p)| (Expr::Unary(*op, Box::new(e2)), v, p))
                    .collect(),
            )),
        },
        // E1 before E2, then (P[v1 ⊕ v2], σ) → (P[eval(v1 ⊕ v2)], σ)
        Expr::Binary(op, a, b) => match step_expr(a, env)? {
            ExprStep::Value(va) => match step_expr(b, env)? {
                ExprStep::Value(vb) => {
                    let r = crate::interp::apply_binary(*op, &va, &vb)?;
                    Ok(ExprStep::Reduced(Expr::Const(r)))
                }
                ExprStep::Reduced(b2) => {
                    Ok(ExprStep::Reduced(Expr::bin(*op, a.as_ref().clone(), b2)))
                }
                ExprStep::Branch(alts) => Ok(ExprStep::Branch(
                    alts.into_iter()
                        .map(|(b2, v, p)| (Expr::bin(*op, a.as_ref().clone(), b2), v, p))
                        .collect(),
                )),
            },
            ExprStep::Reduced(a2) => Ok(ExprStep::Reduced(Expr::bin(*op, a2, b.as_ref().clone()))),
            ExprStep::Branch(alts) => Ok(ExprStep::Branch(
                alts.into_iter()
                    .map(|(a2, v, p)| (Expr::bin(*op, a2, b.as_ref().clone()), v, p))
                    .collect(),
            )),
        },
        Expr::Ternary(c, t, e) => match step_expr(c, env)? {
            ExprStep::Value(v) => Ok(ExprStep::Reduced(if v.truthy()? {
                t.as_ref().clone()
            } else {
                e.as_ref().clone()
            })),
            ExprStep::Reduced(c2) => Ok(ExprStep::Reduced(
                c2.ternary(t.as_ref().clone(), e.as_ref().clone()),
            )),
            ExprStep::Branch(alts) => Ok(ExprStep::Branch(
                alts.into_iter()
                    .map(|(c2, v, p)| (c2.ternary(t.as_ref().clone(), e.as_ref().clone()), v, p))
                    .collect(),
            )),
        },
        // (P[flip(v)], σ) →_v^[1] (P[1], σ) — one successor per outcome.
        Expr::Random(rand) => match step_rand_params(rand, env)? {
            RandStep::Reduced(r2) => Ok(ExprStep::Reduced(Expr::Random(r2))),
            RandStep::Ready(dist) => {
                let support = dist
                    .enumerate_support()
                    .ok_or_else(|| PplError::NonEnumerable(rand.site.as_str().into()))?;
                Ok(ExprStep::Branch(
                    support
                        .into_iter()
                        .map(|v| {
                            let p = dist.log_prob(&v).prob();
                            (Expr::Const(v.clone()), v, p)
                        })
                        .collect(),
                ))
            }
        },
        Expr::Index(..) | Expr::ArrayInit(..) | Expr::Call(..) => Err(PplError::Other(
            "small-step semantics covers only the core fragment".to_string(),
        )),
    }
}

/// Evaluates a deterministic expression to a value (for return
/// expressions).
fn eval_pure(expr: &Expr, env: &HashMap<String, Value>) -> Result<Value, PplError> {
    let mut e = expr.clone();
    for _ in 0..100_000 {
        match step_expr(&e, env)? {
            ExprStep::Value(v) => return Ok(v),
            ExprStep::Reduced(e2) => e = e2,
            ExprStep::Branch(_) => {
                return Err(PplError::Other(
                    "return expression must be deterministic".to_string(),
                ))
            }
        }
    }
    Err(PplError::FuelExhausted { budget: 100_000 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn deterministic_program_single_run() {
        let p = parse("x = 1 + 2 * 3; return x;").unwrap();
        let runs = enumerate_executions(&p, 10_000).unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].prob, 1.0);
        assert!(runs[0].trace.is_empty());
        assert_eq!(runs[0].return_value, Some(Value::Int(7)));
    }

    #[test]
    fn flip_branches_into_two_runs() {
        let p = parse("x = flip(0.3); return x;").unwrap();
        let mut runs = enumerate_executions(&p, 10_000).unwrap();
        runs.sort_by(|a, b| a.prob.partial_cmp(&b.prob).unwrap());
        assert_eq!(runs.len(), 2);
        assert!((runs[0].prob - 0.3).abs() < 1e-12);
        assert!((runs[1].prob - 0.7).abs() < 1e-12);
        let total: f64 = runs.iter().map(|r| r.prob).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn observation_scales_probability() {
        // Paper rule: (observe(flip(v) == 1), σ) →_v (skip, σ).
        let p = parse("observe(flip(0.8) == 1);").unwrap();
        let runs = enumerate_executions(&p, 10_000).unwrap();
        assert_eq!(runs.len(), 1);
        assert!((runs[0].prob - 0.8).abs() < 1e-12);
        assert!(runs[0].trace.is_empty(), "observations emit no trace");
    }

    #[test]
    fn example1_total_probability() {
        let p = parse(
            "a = 1;
             b = flip(a / 3);
             if a < 2 { c = uniform(1, 6); } else { c = uniform(6, 10); }
             d = flip(b / 2);
             observe(flip(1 / 5) == d);
             return c;",
        )
        .unwrap();
        let runs = enumerate_executions(&p, 100_000).unwrap();
        let z: f64 = runs.iter().map(|r| r.prob).sum();
        assert!((z - 0.7).abs() < 1e-12, "Z = {z}");
        assert_eq!(runs.len(), 24);
    }

    #[test]
    fn while_loop_geometric_prefix() {
        // Truncate by the step budget: enumeration of a geometric program
        // does not terminate, so expect fuel exhaustion.
        let p = parse("n = 1; while flip(0.5) { n = n + 1; }").unwrap();
        assert!(matches!(
            enumerate_executions(&p, 200),
            Err(PplError::FuelExhausted { .. })
        ));
    }

    #[test]
    fn bounded_while_terminates() {
        let p = parse("n = 0; while n < 2 { n = n + flip(0.5); } return n;").unwrap();
        // Runs: sequences of flips summing to 2; infinite in principle but
        // flip(0.5) both branches always enumerable — actually this IS
        // unbounded (can flip 0 forever). Use a probability floor instead:
        // just check fuel error or completion; with max_steps 500 it must
        // error.
        assert!(enumerate_executions(&p, 500).is_err());
    }

    #[test]
    fn ternary_reduces_lazily() {
        let p = parse("x = flip(0.5) ? 1 : 2; return x;").unwrap();
        let runs = enumerate_executions(&p, 10_000).unwrap();
        assert_eq!(runs.len(), 2);
        let vals: Vec<i64> = runs
            .iter()
            .map(|r| r.return_value.as_ref().unwrap().as_int().unwrap())
            .collect();
        assert!(vals.contains(&1) && vals.contains(&2));
    }

    #[test]
    fn arrays_are_rejected() {
        let p = parse("a = array(3, 0); return a;").unwrap();
        assert!(enumerate_executions(&p, 100).is_err());
    }
}
