//! Traces: the recorded random choices and observations of one program
//! execution.
//!
//! A trace `t` (Section 3) is the sequence of values taken by every random
//! expression evaluated during an execution, in evaluation order, indexed by
//! address. We additionally record, per choice, the distribution it was
//! drawn from and its log probability, so that
//! `P̃r[t ∼ P] = Π_i Pr[t_i ∼ P | t_{1:i-1}] · Π_i Pr[i ∼ P | t_{1:i-1}]`
//! is available as [`Trace::score`] without re-execution.
//!
//! Internally, traces and choice maps are keyed on interned
//! [`AddressId`]s rather than full [`Address`] values: recording a choice
//! interns its address once (no clone), and lookups hash a `u32` handle
//! instead of the component list. The id-based accessors
//! ([`Trace::choice_by_id`], [`ChoiceMap::get_id`], …) let hot paths skip
//! even that single interning step when they already hold an id. Display
//! and iteration still present full addresses, and [`ChoiceMap`]
//! iteration remains sorted by address order, so serialized output is
//! unchanged.

use std::fmt;

use crate::address::{Address, AddressId, AddressInterner};
use crate::dist::Dist;
use crate::error::PplError;
use crate::fxhash::FxHashMap;
use crate::logweight::LogWeight;
use crate::value::Value;

/// One recorded random choice.
#[derive(Debug, Clone, PartialEq)]
pub struct ChoiceRecord {
    /// The sampled (or reused) value `t_i`.
    pub value: Value,
    /// The distribution the choice was scored against, with the concrete
    /// parameters in effect at evaluation time.
    pub dist: Dist,
    /// `log Pr[t_i ∼ P | t_{1:i-1}]`.
    pub log_prob: LogWeight,
}

/// One recorded observation (`observe(R == E)`).
#[derive(Debug, Clone, PartialEq)]
pub struct ObsRecord {
    /// The observed value `E`.
    pub value: Value,
    /// The observation distribution `R` with concrete parameters.
    pub dist: Dist,
    /// `log Pr[i ∼ P | t_{1:i-1}]`.
    pub log_prob: LogWeight,
}

/// A complete execution trace: ordered random choices, ordered
/// observations, and the program's return value.
///
/// # Examples
///
/// ```
/// use ppl::{Trace, Value, addr};
/// use ppl::dist::Dist;
/// let mut t = Trace::new();
/// let d = Dist::flip(0.2);
/// let lp = d.log_prob(&Value::Bool(true));
/// t.record_choice(addr!["b"], Value::Bool(true), d, lp).unwrap();
/// assert!((t.score().prob() - 0.2).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    choices: Vec<(AddressId, ChoiceRecord)>,
    choice_index: FxHashMap<AddressId, usize>,
    observations: Vec<(AddressId, ObsRecord)>,
    obs_index: FxHashMap<AddressId, usize>,
    return_value: Option<Value>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Records a random choice at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`PplError::AddressCollision`] if the address was already
    /// used by a choice in this trace.
    pub fn record_choice(
        &mut self,
        addr: Address,
        value: Value,
        dist: Dist,
        log_prob: LogWeight,
    ) -> Result<(), PplError> {
        self.record_choice_interned(addr.id(), value, dist, log_prob)
    }

    /// Records a random choice at an already-interned address — the hot
    /// path used when the caller holds an [`AddressId`].
    ///
    /// # Errors
    ///
    /// Returns [`PplError::AddressCollision`] if the address was already
    /// used by a choice in this trace.
    pub fn record_choice_interned(
        &mut self,
        id: AddressId,
        value: Value,
        dist: Dist,
        log_prob: LogWeight,
    ) -> Result<(), PplError> {
        if self.choice_index.contains_key(&id) {
            return Err(PplError::AddressCollision(id.resolve().clone()));
        }
        self.choice_index.insert(id, self.choices.len());
        self.choices.push((
            id,
            ChoiceRecord {
                value,
                dist,
                log_prob,
            },
        ));
        Ok(())
    }

    /// Records an observation at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`PplError::AddressCollision`] if the address was already
    /// used by an observation in this trace.
    pub fn record_observation(
        &mut self,
        addr: Address,
        value: Value,
        dist: Dist,
        log_prob: LogWeight,
    ) -> Result<(), PplError> {
        self.record_observation_interned(addr.id(), value, dist, log_prob)
    }

    /// Records an observation at an already-interned address.
    ///
    /// # Errors
    ///
    /// Returns [`PplError::AddressCollision`] if the address was already
    /// used by an observation in this trace.
    pub fn record_observation_interned(
        &mut self,
        id: AddressId,
        value: Value,
        dist: Dist,
        log_prob: LogWeight,
    ) -> Result<(), PplError> {
        if self.obs_index.contains_key(&id) {
            return Err(PplError::AddressCollision(id.resolve().clone()));
        }
        self.obs_index.insert(id, self.observations.len());
        self.observations.push((
            id,
            ObsRecord {
                value,
                dist,
                log_prob,
            },
        ));
        Ok(())
    }

    /// Sets the program's return value.
    pub fn set_return_value(&mut self, value: Value) {
        self.return_value = Some(value);
    }

    /// The program's return value, if the execution completed.
    pub fn return_value(&self) -> Option<&Value> {
        self.return_value.as_ref()
    }

    /// Looks up the choice recorded at `addr`.
    pub fn choice(&self, addr: &Address) -> Option<&ChoiceRecord> {
        AddressInterner::global()
            .get(addr)
            .and_then(|id| self.choice_by_id(id))
    }

    /// Looks up the choice recorded at an interned address.
    pub fn choice_by_id(&self, id: AddressId) -> Option<&ChoiceRecord> {
        self.choice_index.get(&id).map(|&i| &self.choices[i].1)
    }

    /// Looks up the value of the choice at `addr`.
    pub fn value(&self, addr: &Address) -> Option<&Value> {
        self.choice(addr).map(|c| &c.value)
    }

    /// Looks up the value of the choice at an interned address.
    pub fn value_by_id(&self, id: AddressId) -> Option<&Value> {
        self.choice_by_id(id).map(|c| &c.value)
    }

    /// Looks up the observation recorded at `addr`.
    pub fn observation(&self, addr: &Address) -> Option<&ObsRecord> {
        AddressInterner::global()
            .get(addr)
            .and_then(|id| self.observation_by_id(id))
    }

    /// Looks up the observation recorded at an interned address.
    pub fn observation_by_id(&self, id: AddressId) -> Option<&ObsRecord> {
        self.obs_index.get(&id).map(|&i| &self.observations[i].1)
    }

    /// Whether a choice exists at `addr`.
    pub fn has_choice(&self, addr: &Address) -> bool {
        AddressInterner::global()
            .get(addr)
            .is_some_and(|id| self.choice_index.contains_key(&id))
    }

    /// Whether a choice exists at an interned address.
    pub fn has_choice_id(&self, id: AddressId) -> bool {
        self.choice_index.contains_key(&id)
    }

    /// Iterates over choices in evaluation order.
    pub fn choices(&self) -> impl Iterator<Item = (&Address, &ChoiceRecord)> {
        self.choices.iter().map(|(id, c)| (id.resolve(), c))
    }

    /// Iterates over choices in evaluation order, yielding interned ids.
    pub fn choices_interned(&self) -> impl Iterator<Item = (AddressId, &ChoiceRecord)> {
        self.choices.iter().map(|(id, c)| (*id, c))
    }

    /// Iterates over observations in evaluation order.
    pub fn observations(&self) -> impl Iterator<Item = (&Address, &ObsRecord)> {
        self.observations.iter().map(|(id, o)| (id.resolve(), o))
    }

    /// Iterates over observations in evaluation order, yielding interned
    /// ids.
    pub fn observations_interned(&self) -> impl Iterator<Item = (AddressId, &ObsRecord)> {
        self.observations.iter().map(|(id, o)| (*id, o))
    }

    /// Number of random choices (`|R_t|`).
    pub fn len(&self) -> usize {
        self.choices.len()
    }

    /// Whether the trace has no random choices.
    pub fn is_empty(&self) -> bool {
        self.choices.is_empty()
    }

    /// Number of observations (`|O_t|`).
    pub fn num_observations(&self) -> usize {
        self.observations.len()
    }

    /// `Σ_i log Pr[t_i ∼ P | t_{1:i-1}]`: the joint log probability of the
    /// random choices.
    pub fn choice_score(&self) -> LogWeight {
        self.choices.iter().map(|(_, c)| c.log_prob).sum()
    }

    /// `Σ_i log Pr[i ∼ P | t_{1:i-1}]`: the joint log likelihood of the
    /// observations.
    pub fn observation_score(&self) -> LogWeight {
        self.observations.iter().map(|(_, o)| o.log_prob).sum()
    }

    /// `log P̃r[t ∼ P]`: the unnormalized log probability of the trace
    /// (choices times observations).
    pub fn score(&self) -> LogWeight {
        self.choice_score() + self.observation_score()
    }

    /// Extracts the choice values as a [`ChoiceMap`].
    pub fn to_choice_map(&self) -> ChoiceMap {
        let mut map = ChoiceMap::new();
        for (id, c) in &self.choices {
            map.insert_id(*id, c.value.clone());
        }
        map
    }

    /// Extracts only the choices whose address satisfies `keep` — used to
    /// form the partial traces `s` of Section 5.3.
    pub fn filter_choices(&self, mut keep: impl FnMut(&Address) -> bool) -> ChoiceMap {
        let mut map = ChoiceMap::new();
        for (id, c) in &self.choices {
            if keep(id.resolve()) {
                map.insert_id(*id, c.value.clone());
            }
        }
        map
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "trace (score {}):", self.score())?;
        for (addr, c) in self.choices() {
            writeln!(
                f,
                "  {addr} -> {} (log p = {:.6})",
                c.value,
                c.log_prob.log()
            )?;
        }
        for (addr, o) in self.observations() {
            writeln!(
                f,
                "  observe {addr}: {} (log p = {:.6})",
                o.value,
                o.log_prob.log()
            )?;
        }
        if let Some(rv) = &self.return_value {
            writeln!(f, "  return {rv}")?;
        }
        Ok(())
    }
}

/// A flat map from addresses to values: constraints for replay, partial
/// traces for error analysis, or observation bindings.
///
/// Iteration order is the address order (deterministic). Storage is an
/// id-keyed hash map — inserts and lookups are O(1) with no address
/// clone; [`ChoiceMap::iter`]/[`ChoiceMap::addresses`] sort on demand.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChoiceMap {
    map: FxHashMap<AddressId, Value>,
}

impl ChoiceMap {
    /// Creates an empty map.
    pub fn new() -> ChoiceMap {
        ChoiceMap::default()
    }

    /// Inserts a value, returning the previous value at that address.
    pub fn insert(&mut self, addr: Address, value: Value) -> Option<Value> {
        self.map.insert(addr.id(), value)
    }

    /// Inserts a value at an already-interned address.
    pub fn insert_id(&mut self, id: AddressId, value: Value) -> Option<Value> {
        self.map.insert(id, value)
    }

    /// Looks up a value.
    pub fn get(&self, addr: &Address) -> Option<&Value> {
        AddressInterner::global()
            .get(addr)
            .and_then(|id| self.map.get(&id))
    }

    /// Looks up a value by interned address.
    pub fn get_id(&self, id: AddressId) -> Option<&Value> {
        self.map.get(&id)
    }

    /// Whether the map binds `addr`.
    pub fn contains(&self, addr: &Address) -> bool {
        self.get(addr).is_some()
    }

    /// Removes a binding.
    pub fn remove(&mut self, addr: &Address) -> Option<Value> {
        AddressInterner::global()
            .get(addr)
            .and_then(|id| self.map.remove(&id))
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The bindings sorted by address order (computed on demand).
    fn sorted(&self) -> Vec<(&'static Address, &Value)> {
        let mut entries: Vec<(&'static Address, &Value)> =
            self.map.iter().map(|(id, v)| (id.resolve(), v)).collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        entries
    }

    /// Iterates over bindings in address order.
    pub fn iter(&self) -> impl Iterator<Item = (&Address, &Value)> {
        self.sorted().into_iter()
    }

    /// Iterates over the bound addresses in address order.
    pub fn addresses(&self) -> impl Iterator<Item = &Address> {
        self.sorted().into_iter().map(|(a, _)| a)
    }
}

impl FromIterator<(Address, Value)> for ChoiceMap {
    fn from_iter<I: IntoIterator<Item = (Address, Value)>>(iter: I) -> Self {
        ChoiceMap {
            map: iter.into_iter().map(|(a, v)| (a.id(), v)).collect(),
        }
    }
}

impl Extend<(Address, Value)> for ChoiceMap {
    fn extend<I: IntoIterator<Item = (Address, Value)>>(&mut self, iter: I) {
        self.map.extend(iter.into_iter().map(|(a, v)| (a.id(), v)));
    }
}

impl fmt::Display for ChoiceMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (addr, v)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{addr} -> {v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr;

    fn flip_record(t: &mut Trace, name: &str, b: bool, p: f64) {
        let d = Dist::flip(p);
        let lp = d.log_prob(&Value::Bool(b));
        t.record_choice(addr![name], Value::Bool(b), d, lp).unwrap();
    }

    #[test]
    fn fig1_original_trace_score() {
        // t = [alpha -> 1, beta -> 1] with observation o (p = 0.8):
        // P̃r[t ∼ P] = 0.02 * 0.9 * 0.8
        let mut t = Trace::new();
        flip_record(&mut t, "alpha", true, 0.02);
        flip_record(&mut t, "beta", true, 0.9);
        let d = Dist::flip(0.8);
        let lp = d.log_prob(&Value::Bool(true));
        t.record_observation(addr!["o"], Value::Bool(true), d, lp)
            .unwrap();
        assert!((t.score().prob() - 0.02 * 0.9 * 0.8).abs() < 1e-12);
        assert!((t.choice_score().prob() - 0.02 * 0.9).abs() < 1e-12);
        assert!((t.observation_score().prob() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn collision_detected() {
        let mut t = Trace::new();
        flip_record(&mut t, "x", true, 0.5);
        let d = Dist::flip(0.5);
        let lp = d.log_prob(&Value::Bool(false));
        let err = t
            .record_choice(addr!["x"], Value::Bool(false), d, lp)
            .unwrap_err();
        assert!(matches!(err, PplError::AddressCollision(_)));
    }

    #[test]
    fn order_is_preserved() {
        let mut t = Trace::new();
        flip_record(&mut t, "c", true, 0.5);
        flip_record(&mut t, "a", true, 0.5);
        flip_record(&mut t, "b", true, 0.5);
        // Compare addresses directly — no string materialization.
        let order: Vec<&Address> = t.choices().map(|(a, _)| a).collect();
        assert_eq!(order, [&addr!["c"], &addr!["a"], &addr!["b"]]);
    }

    #[test]
    fn lookup_and_len() {
        let mut t = Trace::new();
        flip_record(&mut t, "x", true, 0.25);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert!(t.has_choice(&addr!["x"]));
        assert!(!t.has_choice(&addr!["y"]));
        assert_eq!(t.value(&addr!["x"]), Some(&Value::Bool(true)));
        assert!(t.observation(&addr!["x"]).is_none());
    }

    #[test]
    fn interned_lookups_agree_with_address_lookups() {
        let mut t = Trace::new();
        flip_record(&mut t, "x", true, 0.25);
        let id = addr!["x"].id();
        assert_eq!(t.choice_by_id(id), t.choice(&addr!["x"]));
        assert_eq!(t.value_by_id(id), t.value(&addr!["x"]));
        assert!(t.has_choice_id(id));
        let ids: Vec<AddressId> = t.choices_interned().map(|(i, _)| i).collect();
        assert_eq!(ids, [id]);
    }

    #[test]
    fn return_value_round_trip() {
        let mut t = Trace::new();
        assert!(t.return_value().is_none());
        t.set_return_value(Value::Int(42));
        assert_eq!(t.return_value(), Some(&Value::Int(42)));
    }

    #[test]
    fn choice_map_extraction_and_filter() {
        let mut t = Trace::new();
        flip_record(&mut t, "a", true, 0.5);
        flip_record(&mut t, "b", false, 0.5);
        let all = t.to_choice_map();
        assert_eq!(all.len(), 2);
        let only_a = t.filter_choices(|addr| *addr == addr!["a"]);
        assert_eq!(only_a.len(), 1);
        assert!(only_a.contains(&addr!["a"]));
        assert!(!only_a.contains(&addr!["b"]));
    }

    #[test]
    fn choice_map_basics() {
        let mut m = ChoiceMap::new();
        assert!(m.is_empty());
        m.insert(addr!["x"], Value::Int(1));
        assert_eq!(m.insert(addr!["x"], Value::Int(2)), Some(Value::Int(1)));
        assert_eq!(m.get(&addr!["x"]), Some(&Value::Int(2)));
        m.remove(&addr!["x"]);
        assert!(m.is_empty());
        let m: ChoiceMap = vec![(addr!["z"], Value::Int(0)), (addr!["a"], Value::Int(1))]
            .into_iter()
            .collect();
        // Iteration is address order regardless of insertion order —
        // compared as addresses, rendered only on failure.
        let keys: Vec<&Address> = m.addresses().collect();
        assert_eq!(keys, [&addr!["a"], &addr!["z"]]);
    }

    #[test]
    fn empty_trace_scores_one() {
        let t = Trace::new();
        assert_eq!(t.score(), LogWeight::ONE);
    }

    #[test]
    fn display_contains_choices() {
        let mut t = Trace::new();
        flip_record(&mut t, "a", true, 0.5);
        t.set_return_value(Value::Bool(true));
        let s = t.to_string();
        assert!(s.contains("a -> true"));
        assert!(s.contains("return true"));
    }
}
