//! Plain-text serialization of choice maps and weighted collections.
//!
//! Inference results need to outlive a process: saved posterior samples
//! of `P` are exactly the input that incremental inference consumes later
//! ("samples of P obtained using an existing inference algorithm").
//! The format stores *values by address*; distributions and scores are
//! reconstructed by replaying the model
//! ([`crate::handlers::score`]), which also re-validates the samples
//! against the (possibly changed) program.
//!
//! Format, one binding per line, `#` comments ignored:
//!
//! ```text
//! # incremental-ppl choices v1
//! "slope" = r:-0.8966
//! "y"/3 = b:true
//! "xs" = a:[i:1, i:2]
//! ```
//!
//! Symbols are quoted with backslash escapes; integer components are
//! bare. Reals use Rust's shortest round-tripping representation.

use std::fmt::Write as _;

use crate::address::{Address, Component};
use crate::error::PplError;
use crate::trace::ChoiceMap;
use crate::value::Value;

/// Serializes a value.
fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::Bool(b) => {
            let _ = write!(out, "b:{b}");
        }
        Value::Int(i) => {
            let _ = write!(out, "i:{i}");
        }
        Value::Real(r) => {
            let _ = write!(out, "r:{r:?}");
        }
        Value::Array(items) => {
            out.push_str("a:[");
            for (i, v) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_value(out, v);
            }
            out.push(']');
        }
    }
}

fn write_component(out: &mut String, component: &Component) {
    match component {
        Component::Sym(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    other => out.push(other),
                }
            }
            out.push('"');
        }
        Component::Idx(i) => {
            let _ = write!(out, "{i}");
        }
    }
}

/// Serializes an address.
pub fn write_address(addr: &Address) -> String {
    let mut out = String::new();
    for (i, c) in addr.components().iter().enumerate() {
        if i > 0 {
            out.push('/');
        }
        write_component(&mut out, c);
    }
    out
}

/// Serializes a choice map to the line format.
pub fn write_choice_map(map: &ChoiceMap) -> String {
    let mut out = String::from("# incremental-ppl choices v1\n");
    for (addr, value) in map.iter() {
        out.push_str(&write_address(addr));
        out.push_str(" = ");
        write_value(&mut out, value);
        out.push('\n');
    }
    out
}

/// Serializes a weighted collection of choice maps: blocks separated by
/// `weight <log-weight>` headers.
pub fn write_weighted_collection(entries: &[(ChoiceMap, f64)]) -> String {
    let mut out = String::from("# incremental-ppl collection v1\n");
    for (map, log_weight) in entries {
        let _ = writeln!(out, "weight {log_weight:?}");
        for (addr, value) in map.iter() {
            out.push_str(&write_address(addr));
            out.push_str(" = ");
            write_value(&mut out, value);
            out.push('\n');
        }
    }
    out
}

struct Cursor<'a> {
    text: &'a str,
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn error(&self, msg: &str) -> PplError {
        PplError::Other(format!("trace parse error at line {}: {msg}", self.line))
    }

    fn rest(&self) -> &'a str {
        &self.text[self.pos..]
    }

    fn bump(&mut self, n: usize) {
        self.pos += n;
    }

    fn skip_spaces(&mut self) {
        while self.rest().starts_with(' ') {
            self.bump(1);
        }
    }

    fn expect(&mut self, token: &str) -> Result<(), PplError> {
        if self.rest().starts_with(token) {
            self.bump(token.len());
            Ok(())
        } else {
            Err(self.error(&format!("expected `{token}`")))
        }
    }

    fn parse_component(&mut self) -> Result<Component, PplError> {
        if self.rest().starts_with('"') {
            self.bump(1);
            let mut sym = String::new();
            loop {
                let mut chars = self.rest().chars();
                match chars.next() {
                    None => return Err(self.error("unterminated symbol")),
                    Some('"') => {
                        self.bump(1);
                        return Ok(Component::from(sym.as_str()));
                    }
                    Some('\\') => {
                        let escaped = chars.next().ok_or_else(|| self.error("dangling escape"))?;
                        sym.push(match escaped {
                            'n' => '\n',
                            other => other,
                        });
                        self.bump(1 + escaped.len_utf8());
                    }
                    Some(c) => {
                        sym.push(c);
                        self.bump(c.len_utf8());
                    }
                }
            }
        } else {
            let end = self
                .rest()
                .find(|c: char| !(c.is_ascii_digit() || c == '-'))
                .unwrap_or(self.rest().len());
            let text = &self.rest()[..end];
            let i: i64 = text
                .parse()
                .map_err(|_| self.error(&format!("bad index `{text}`")))?;
            self.bump(end);
            Ok(Component::from(i))
        }
    }

    fn parse_address(&mut self) -> Result<Address, PplError> {
        let mut components = vec![self.parse_component()?];
        while self.rest().starts_with('/') {
            self.bump(1);
            components.push(self.parse_component()?);
        }
        Ok(Address::new(components))
    }

    fn parse_value(&mut self) -> Result<Value, PplError> {
        let rest = self.rest();
        if let Some(stripped) = rest.strip_prefix("b:") {
            self.bump(2);
            if stripped.starts_with("true") {
                self.bump(4);
                Ok(Value::Bool(true))
            } else if stripped.starts_with("false") {
                self.bump(5);
                Ok(Value::Bool(false))
            } else {
                Err(self.error("bad boolean"))
            }
        } else if rest.starts_with("i:") {
            self.bump(2);
            let end = self
                .rest()
                .find(|c: char| !(c.is_ascii_digit() || c == '-'))
                .unwrap_or(self.rest().len());
            let text = &self.rest()[..end];
            let i: i64 = text
                .parse()
                .map_err(|_| self.error(&format!("bad int `{text}`")))?;
            self.bump(end);
            Ok(Value::Int(i))
        } else if rest.starts_with("r:") {
            self.bump(2);
            let end = self
                .rest()
                .find([',', ']', '\n'])
                .unwrap_or(self.rest().len());
            let text = self.rest()[..end].trim();
            let r: f64 = text
                .parse()
                .map_err(|_| self.error(&format!("bad real `{text}`")))?;
            self.bump(end);
            Ok(Value::Real(r))
        } else if rest.starts_with("a:[") {
            self.bump(3);
            let mut items = Vec::new();
            self.skip_spaces();
            if self.rest().starts_with(']') {
                self.bump(1);
                return Ok(Value::array(items));
            }
            loop {
                items.push(self.parse_value()?);
                self.skip_spaces();
                if self.rest().starts_with(',') {
                    self.bump(1);
                    self.skip_spaces();
                } else {
                    self.expect("]")?;
                    return Ok(Value::array(items));
                }
            }
        } else {
            Err(self.error("expected a tagged value (b:/i:/r:/a:[)"))
        }
    }
}

/// Parses a single `addr = value` binding line.
fn parse_binding(line: &str, line_no: usize) -> Result<(Address, Value), PplError> {
    let mut cursor = Cursor {
        text: line,
        pos: 0,
        line: line_no,
    };
    let addr = cursor.parse_address()?;
    cursor.skip_spaces();
    cursor.expect("=")?;
    cursor.skip_spaces();
    let value = cursor.parse_value()?;
    cursor.skip_spaces();
    if !cursor.rest().is_empty() {
        return Err(cursor.error("trailing garbage"));
    }
    Ok((addr, value))
}

/// Parses a choice map from the line format.
///
/// # Errors
///
/// Returns [`PplError::Other`] with line information on malformed input.
pub fn parse_choice_map(text: &str) -> Result<ChoiceMap, PplError> {
    let mut map = ChoiceMap::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (addr, value) = parse_binding(line, i + 1)?;
        map.insert(addr, value);
    }
    Ok(map)
}

/// Parses a weighted collection (inverse of
/// [`write_weighted_collection`]).
///
/// # Errors
///
/// Returns [`PplError::Other`] on malformed input.
pub fn parse_weighted_collection(text: &str) -> Result<Vec<(ChoiceMap, f64)>, PplError> {
    let mut entries: Vec<(ChoiceMap, f64)> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(w) = line.strip_prefix("weight ") {
            let log_weight: f64 = w.trim().parse().map_err(|_| {
                PplError::Other(format!("trace parse error at line {}: bad weight", i + 1))
            })?;
            entries.push((ChoiceMap::new(), log_weight));
        } else {
            let (addr, value) = parse_binding(line, i + 1)?;
            let entry = entries.last_mut().ok_or_else(|| {
                PplError::Other(format!(
                    "trace parse error at line {}: binding before any `weight` header",
                    i + 1
                ))
            })?;
            entry.0.insert(addr, value);
        }
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr;

    fn sample_map() -> ChoiceMap {
        let mut m = ChoiceMap::new();
        m.insert(addr!["slope"], Value::Real(-0.896_612_3));
        m.insert(addr!["y", 3], Value::Bool(true));
        m.insert(addr!["n"], Value::Int(-42));
        m.insert(
            addr!["xs"],
            Value::array(vec![Value::Int(1), Value::Real(2.5), Value::Bool(false)]),
        );
        m.insert(addr!["weird \"label\"", -7], Value::Int(0));
        m
    }

    #[test]
    fn choice_map_round_trips() {
        let m = sample_map();
        let text = write_choice_map(&m);
        let parsed = parse_choice_map(&text).unwrap();
        assert_eq!(m, parsed);
    }

    #[test]
    fn reals_round_trip_exactly() {
        let mut m = ChoiceMap::new();
        for (i, r) in [f64::MIN_POSITIVE, 1.0 / 3.0, -1e300, 0.1 + 0.2]
            .iter()
            .enumerate()
        {
            m.insert(addr!["r", i as i64], Value::Real(*r));
        }
        let parsed = parse_choice_map(&write_choice_map(&m)).unwrap();
        assert_eq!(m, parsed);
    }

    #[test]
    fn weighted_collection_round_trips() {
        let entries = vec![
            (sample_map(), -1.25),
            (ChoiceMap::new(), 0.0),
            (sample_map(), f64::NEG_INFINITY),
        ];
        let text = write_weighted_collection(&entries);
        let parsed = parse_weighted_collection(&text).unwrap();
        assert_eq!(entries.len(), parsed.len());
        for ((m1, w1), (m2, w2)) in entries.iter().zip(&parsed) {
            assert_eq!(m1, m2);
            assert!(w1 == w2 || (w1.is_infinite() && w2.is_infinite()));
        }
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# header\n\n\"x\" = i:1\n  # trailing comment\n";
        let m = parse_choice_map(text).unwrap();
        assert_eq!(m.get(&addr!["x"]), Some(&Value::Int(1)));
    }

    #[test]
    fn malformed_inputs_error_with_line_numbers() {
        for bad in [
            "\"x\" i:1",            // missing =
            "\"x\" = q:1",          // bad tag
            "\"x\" = i:1 extra",    // trailing garbage
            "\"unterminated = i:1", // unterminated symbol
            "\"x\" = a:[i:1",       // unterminated array
        ] {
            let err = parse_choice_map(bad).unwrap_err();
            assert!(err.to_string().contains("line 1"), "{bad}: {err}");
        }
        let err = parse_weighted_collection("\"x\" = i:1").unwrap_err();
        assert!(err.to_string().contains("weight"), "{err}");
    }

    #[test]
    fn saved_samples_replay_through_a_model() {
        use crate::dist::Dist;
        use crate::handlers::{score, simulate};
        use crate::Handler;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let model = |h: &mut dyn Handler| {
            let x = h.sample(addr!["x"], Dist::flip(0.5))?;
            let y = h.sample(addr!["y"], Dist::normal(0.0, 1.0))?;
            let _ = y;
            Ok(x)
        };
        let mut rng = StdRng::seed_from_u64(1);
        let t = simulate(&model, &mut rng).unwrap();
        let text = write_choice_map(&t.to_choice_map());
        let loaded = parse_choice_map(&text).unwrap();
        let replayed = score(&model, &loaded).unwrap();
        assert!((replayed.score().log() - t.score().log()).abs() < 1e-12);
    }
}
