//! Runtime values of the probabilistic language.
//!
//! The paper's language works over rationals Q with booleans encoded as
//! `0`/`1` (Section 3). We use a tagged value type with integers, IEEE reals,
//! booleans, and arrays (arrays support the PSI-style evaluation programs
//! such as the Gaussian mixture model of Listing 5).

use std::fmt;
use std::sync::Arc;

use crate::error::PplError;

/// A runtime value.
///
/// Booleans coerce to numbers (`false = 0`, `true = 1`) and any non-zero
/// number is truthy, mirroring the paper's convention that "0 stands for
/// false, while all other values stand for true".
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A boolean, `0`/`1` when viewed numerically.
    Bool(bool),
    /// A 64-bit signed integer.
    Int(i64),
    /// An IEEE-754 double-precision real.
    Real(f64),
    /// An array of values with value (copy) semantics. The backing
    /// storage is shared (`Arc`) and copied on write, so cloning an array
    /// value is O(1) — a property the incremental dependency-graph
    /// runtime relies on to skip array-heavy program slices cheaply.
    Array(Arc<Vec<Value>>),
}

impl Value {
    /// A short human-readable name for the value's type.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Real(_) => "real",
            Value::Array(_) => "array",
        }
    }

    /// Interprets the value as a boolean (`0` is false, any other number is
    /// true).
    ///
    /// # Errors
    ///
    /// Returns [`PplError::Type`] for arrays.
    pub fn truthy(&self) -> Result<bool, PplError> {
        match self {
            Value::Bool(b) => Ok(*b),
            Value::Int(i) => Ok(*i != 0),
            Value::Real(r) => Ok(*r != 0.0),
            Value::Array(_) => Err(PplError::type_error("bool", self.type_name(), "condition")),
        }
    }

    /// Interprets the value as a real number.
    ///
    /// # Errors
    ///
    /// Returns [`PplError::Type`] for arrays.
    pub fn as_real(&self) -> Result<f64, PplError> {
        match self {
            Value::Bool(b) => Ok(if *b { 1.0 } else { 0.0 }),
            Value::Int(i) => Ok(*i as f64),
            Value::Real(r) => Ok(*r),
            Value::Array(_) => Err(PplError::type_error("real", self.type_name(), "number")),
        }
    }

    /// Interprets the value as an integer.
    ///
    /// Reals convert only when they are exactly integral.
    ///
    /// # Errors
    ///
    /// Returns [`PplError::Type`] for arrays and non-integral reals.
    pub fn as_int(&self) -> Result<i64, PplError> {
        match self {
            Value::Bool(b) => Ok(i64::from(*b)),
            Value::Int(i) => Ok(*i),
            Value::Real(r) if r.fract() == 0.0 && r.is_finite() => Ok(*r as i64),
            other => Err(PplError::type_error("int", other.type_name(), "integer")),
        }
    }

    /// Borrows the value as an array slice.
    ///
    /// # Errors
    ///
    /// Returns [`PplError::Type`] for non-arrays.
    pub fn as_array(&self) -> Result<&[Value], PplError> {
        match self {
            Value::Array(items) => Ok(items),
            other => Err(PplError::type_error("array", other.type_name(), "indexing")),
        }
    }

    /// Mutably borrows the value as an array, copying the shared backing
    /// storage first if it is aliased (copy-on-write).
    ///
    /// # Errors
    ///
    /// Returns [`PplError::Type`] for non-arrays.
    pub fn as_array_mut(&mut self) -> Result<&mut Vec<Value>, PplError> {
        match self {
            Value::Array(items) => Ok(Arc::make_mut(items)),
            other => Err(PplError::type_error("array", other.type_name(), "indexing")),
        }
    }

    /// Builds an array value.
    pub fn array(items: Vec<Value>) -> Value {
        Value::Array(Arc::new(items))
    }

    /// Numeric equality that treats `Bool`, `Int` and `Real` values on a
    /// common number line (`true == 1`, `2 == 2.0`), and compares arrays
    /// element-wise.
    pub fn num_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Array(a), Value::Array(b)) => {
                a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.num_eq(y))
            }
            (Value::Array(_), _) | (_, Value::Array(_)) => false,
            _ => match (self.as_real(), other.as_real()) {
                (Ok(a), Ok(b)) => a == b,
                _ => false,
            },
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            // `{:?}` keeps a decimal point on integral reals (`4.0`, not
            // `4`), so printed programs re-parse with the same types.
            Value::Real(r) => write!(f, "{r:?}"),
            Value::Array(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(r: f64) -> Self {
        Value::Real(r)
    }
}

impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Self {
        Value::Array(Arc::new(items))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness_follows_paper_convention() {
        assert!(!Value::Int(0).truthy().unwrap());
        assert!(Value::Int(3).truthy().unwrap());
        assert!(Value::Real(-0.5).truthy().unwrap());
        assert!(!Value::Real(0.0).truthy().unwrap());
        assert!(Value::Bool(true).truthy().unwrap());
        assert!(Value::array(vec![]).truthy().is_err());
    }

    #[test]
    fn bool_coerces_to_numbers() {
        assert_eq!(Value::Bool(true).as_real().unwrap(), 1.0);
        assert_eq!(Value::Bool(false).as_int().unwrap(), 0);
    }

    #[test]
    fn integral_real_converts_to_int() {
        assert_eq!(Value::Real(4.0).as_int().unwrap(), 4);
        assert!(Value::Real(4.5).as_int().is_err());
        assert!(Value::Real(f64::NAN).as_int().is_err());
    }

    #[test]
    fn num_eq_crosses_types() {
        assert!(Value::Int(1).num_eq(&Value::Bool(true)));
        assert!(Value::Real(2.0).num_eq(&Value::Int(2)));
        assert!(!Value::Real(2.5).num_eq(&Value::Int(2)));
        assert!(Value::array(vec![Value::Int(1)]).num_eq(&Value::array(vec![Value::Real(1.0)])));
        assert!(!Value::array(vec![Value::Int(1)]).num_eq(&Value::Int(1)));
        assert!(!Value::array(vec![]).num_eq(&Value::array(vec![Value::Int(1)])));
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            Value::array(vec![Value::Int(1), Value::Bool(true)]).to_string(),
            "[1, true]"
        );
        assert_eq!(Value::Real(0.5).to_string(), "0.5");
    }

    #[test]
    fn array_accessors() {
        let mut v = Value::array(vec![Value::Int(1)]);
        assert_eq!(v.as_array().unwrap().len(), 1);
        v.as_array_mut().unwrap().push(Value::Int(2));
        assert_eq!(v.as_array().unwrap().len(), 2);
        assert!(Value::Int(0).as_array().is_err());
    }
}
