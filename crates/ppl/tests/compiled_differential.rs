//! Differential contract between the compiled evaluator and the
//! tree-walk reference interpreter.
//!
//! [`Interp::run`] (register-lowered programs, slot-resolved
//! environments, pooled eval frames) must be *bit-identical* to
//! [`Interp::run_tree_walk`]: same RNG draws, same recorded trace (the
//! `{:?}` rendering pins log-weights to the bit), same error variants,
//! and the same fuel accounting at every budget. These tests sweep
//! randomly generated surface programs, hand-built error shapes the
//! parser cannot produce, and fuel budgets from zero up.

use ppl::ast::{Block, Builtin, Expr, Program, Stmt};
use ppl::handlers::PriorSampler;
use ppl::parse;
use ppl::Interp;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs `program` through one evaluator with a fresh seeded RNG and
/// renders everything observable about the run: the result (value or
/// error variant) and the full recorded trace.
fn run_one(program: &Program, fuel: u64, seed: u64, compiled: bool) -> String {
    let interp = Interp::with_fuel(fuel);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut handler = PriorSampler::new(&mut rng);
    let result = if compiled {
        interp.run(program, &mut handler)
    } else {
        interp.run_tree_walk(program, &mut handler)
    };
    format!("{result:?} | {:?}", handler.trace())
}

/// Asserts the compiled and tree-walk runs of `program` render
/// identically under `fuel` and `seed`.
fn assert_paths_agree(program: &Program, fuel: u64, seed: u64, context: &str) {
    let compiled = run_one(program, fuel, seed, true);
    let tree = run_one(program, fuel, seed, false);
    assert_eq!(compiled, tree, "{context}: compiled vs tree-walk");
}

/// A generator of surface programs that deliberately includes failing
/// shapes — division by zero, out-of-bounds indexing, reads of unbound
/// variables, invalid distribution parameters, unbounded loops — so the
/// differential covers the error surface, not just happy paths.
fn program_strategy() -> impl Strategy<Value = String> {
    let stmt = prop_oneof![
        (0usize..3, 1u32..99).prop_map(|(v, p)| format!("v{v} = flip(0.{p:02}) @ f{v};")),
        (0usize..3, 0i64..4, 1i64..5)
            .prop_map(|(v, lo, k)| format!("v{v} = uniform({lo}, {}) @ u{v};", lo + k)),
        (0usize..3, 0i64..5).prop_map(|(v, m)| format!("v{v} = gauss({m}, 1.5) @ g{v};")),
        (0usize..3, 1i64..6).prop_map(|(v, l)| format!("v{v} = poisson({l}.0) @ p{v};")),
        (0usize..3, 1u32..9, 1u32..9)
            .prop_map(|(v, a, b)| format!("v{v} = categorical(0.{a}, 0.{b}, 0.1) @ c{v};")),
        // Arithmetic over prior statements' values; `v / (w - w)` and
        // `v % 0` manufacture DivisionByZero nondeterministically.
        (0usize..3, 0usize..3, 0usize..3)
            .prop_map(|(v, a, b)| format!("v{v} = va{a} * 2 + va{b};")),
        (0usize..3, 0usize..3).prop_map(|(v, a)| format!("v{v} = va{a} / (va{a} - 1);")),
        // Array traffic, with indices that can run off the end.
        (0usize..3, 1i64..4).prop_map(|(v, n)| format!("arr{v} = array({n}, 0);")),
        (0usize..3, 0i64..5, 0i64..9).prop_map(|(v, i, x)| format!("arr{v}[{i}] = {x};")),
        (0usize..3, 0usize..3, 0i64..5).prop_map(|(v, a, i)| format!("v{v} = arr{a}[{i}];")),
        // Reads of a variable no statement ever binds.
        (0usize..3).prop_map(|v| format!("v{v} = ghost + 1;")),
        // Builtins, ternaries, comparisons.
        (0usize..3, 0usize..3).prop_map(|(v, a)| format!("v{v} = sqrt(abs(va{a}) + 1);")),
        (0usize..3, 0usize..3, 0usize..3).prop_map(|(v, a, b)| {
            format!("v{v} = va{a} > va{b} ? max(va{a}, 2) : min(va{b}, 7);")
        }),
        // Control flow: if/else, bounded for, while with a counter that
        // may exhaust fuel at small budgets.
        (0usize..3, 1u32..99, 0usize..3).prop_map(|(c, p, a)| {
            format!("if va{c} > 0 {{ va{a} = flip(0.{p:02}) @ w{a}; }} else {{ va{a} = 1; }}")
        }),
        (0usize..3, 1i64..4, 1u32..99).prop_map(|(v, n, p)| {
            format!("for i{v} in [0..{n}) {{ va{v} = flip(0.{p:02}) @ l{v}; }}")
        }),
        (0usize..3, 1i64..5)
            .prop_map(|(v, n)| { format!("k{v} = 0; while k{v} < {n} {{ k{v} = k{v} + 1; }}") }),
        (1u32..99, 0usize..3)
            .prop_map(|(p, v)| format!("observe(flip(0.{p:02}) @ o{v} == (va{v} > 0));")),
    ];
    proptest::collection::vec(stmt, 1..8).prop_map(|stmts| {
        let mut src = String::from(
            "va0 = 1; va1 = 0; va2 = 1; v0 = 0; v1 = 0; v2 = 0;\n\
             arr0 = array(2, 0); arr1 = array(3, 1); arr2 = array(1, 0);\n",
        );
        for s in stmts {
            src.push_str(&s);
            src.push('\n');
        }
        src.push_str("return va0 + v0;");
        src
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Random programs at the default budget: both paths must render
    /// identically (values, traces with bit-level log-weights, errors).
    #[test]
    fn compiled_matches_tree_walk_on_random_programs(
        src in program_strategy(),
        seed in 0u64..1_000_000,
    ) {
        let program = parse(&src).expect("generated program parses");
        let compiled = run_one(&program, ppl::interp::DEFAULT_FUEL, seed, true);
        let tree = run_one(&program, ppl::interp::DEFAULT_FUEL, seed, false);
        prop_assert_eq!(compiled, tree, "program:\n{}", src);
    }

    /// Fuel sweep: at every budget from 0 up, the two paths exhaust (or
    /// don't) at exactly the same step with the same partial trace.
    #[test]
    fn fuel_accounting_is_bit_identical(
        src in program_strategy(),
        seed in 0u64..1_000_000,
    ) {
        let program = parse(&src).expect("generated program parses");
        for fuel in 0..48u64 {
            let compiled = run_one(&program, fuel, seed, true);
            let tree = run_one(&program, fuel, seed, false);
            prop_assert_eq!(
                compiled, tree,
                "fuel {} program:\n{}", fuel, src
            );
        }
    }
}

/// Error shapes the parser rejects up front but the AST admits: builtin
/// calls with the wrong arity must fail identically on both paths (the
/// compiler pre-checks arity but preserves the eval-time error).
#[test]
fn bad_arity_errors_agree() {
    let cases = [
        Expr::Call(Builtin::Sqrt, vec![]),
        Expr::Call(Builtin::Sqrt, vec![Expr::int(1), Expr::int(2)]),
        Expr::Call(Builtin::Max, vec![Expr::int(1)]),
        Expr::Call(Builtin::Len, vec![Expr::int(1), Expr::int(2), Expr::int(3)]),
    ];
    for (i, call) in cases.into_iter().enumerate() {
        let program = Program::new(
            Block::new(vec![Stmt::Assign("x".into(), call)]),
            Some(Expr::var("x")),
        );
        assert_paths_agree(
            &program,
            ppl::interp::DEFAULT_FUEL,
            7,
            &format!("arity case {i}"),
        );
        // The arity error must also win at every fuel level it is
        // reachable at.
        for fuel in 0..6 {
            assert_paths_agree(&program, fuel, 7, &format!("arity case {i} fuel {fuel}"));
        }
    }
}

/// An infinite loop exhausts the same budget on both paths.
#[test]
fn fuel_exhaustion_agrees_on_unbounded_loop() {
    let program = parse("n = 0; while true { n = n + 1; } return n;").unwrap();
    for fuel in [0, 1, 5, 100, 1000] {
        assert_paths_agree(&program, fuel, 3, &format!("unbounded loop fuel {fuel}"));
    }
}

/// Repeated runs through the public path reuse pooled frames and hit the
/// compile cache: the telemetry counters must move.
#[test]
fn frame_pool_and_compile_cache_telemetry() {
    let program = parse("x = flip(0.5) @ x; y = gauss(0, 1) @ y; return y;").unwrap();
    let interp = Interp::new();
    let run = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut handler = PriorSampler::new(&mut rng);
        interp.run(&program, &mut handler).unwrap();
    };
    run(0); // warm: compiles the program, creates this thread's frame
    let before = ppl::compile::eval_counters();
    run(1);
    run(2);
    let after = ppl::compile::eval_counters();
    // Counters are process-global and only ever increase, so deltas are
    // lower bounds even with other tests running concurrently.
    assert!(
        after.compiled_execs >= before.compiled_execs + 2,
        "compiled execs: {before:?} -> {after:?}"
    );
    assert!(
        after.compile_cache_hits >= before.compile_cache_hits + 2,
        "cache hits: {before:?} -> {after:?}"
    );
    // The frame pool is per-thread and this thread's frame was returned
    // after the warm-up run, so both runs reuse rather than create.
    assert!(
        after.frames_reused >= before.frames_reused + 2,
        "frame reuse: {before:?} -> {after:?}"
    );
}
