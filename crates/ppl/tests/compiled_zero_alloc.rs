//! Allocation contract for the compiled evaluator.
//!
//! Once a program is compiled and a worker's eval frame is warm, a
//! [`run_compiled`] execution on the happy path must perform **zero**
//! heap allocations: values stay in registers/slots, loop state reuses
//! the frame's scratch vectors, and builtin calls use a fixed argument
//! buffer. This file installs a counting global allocator and holds the
//! compiled path to that bar; it contains exactly one test so no
//! concurrent test thread can pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ppl::compile::{compiled_for, run_compiled, EvalFrame};
use ppl::handlers::PriorSampler;
use ppl::parse;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn warm_compiled_eval_allocates_nothing() {
    // Deterministic program exercising slots, arithmetic, builtins,
    // ternaries, if/else, for and while loops — but no random choices or
    // arrays, whose *handler-side* recording legitimately allocates.
    let program = parse(
        "x = 3; y = 0.5; acc = 0;\n\
         for i in [0..6) {\n\
           acc = acc + i * x;\n\
           if acc > 10 { acc = acc - 1; } else { acc = acc + 2; }\n\
         }\n\
         k = 0;\n\
         while k < 5 { k = k + 1; acc = acc + k; }\n\
         z = sqrt(abs(acc) + 1.0) + max(y, 0.25);\n\
         w = acc > 0 ? floor(z) : 0 - 1;\n\
         return acc + w;",
    )
    .expect("program parses");

    let compiled = compiled_for(&program);
    let mut frame = EvalFrame::new();
    let mut rng = StdRng::seed_from_u64(1);
    let mut handler = PriorSampler::new(&mut rng);

    // Warm-up: grows the frame's slot and loop vectors to capacity and
    // initializes process-wide lazies (telemetry, interner).
    let warm =
        run_compiled(&compiled, &mut frame, 1_000_000, &mut handler).expect("warm-up run succeeds");

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let hot =
        run_compiled(&compiled, &mut frame, 1_000_000, &mut handler).expect("hot run succeeds");
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(hot, warm, "deterministic program must repeat its result");
    assert_eq!(
        after - before,
        0,
        "warm compiled eval must not allocate ({} allocations)",
        after - before
    );
}
