//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! This workspace builds in environments with no crates-registry access,
//! so the external `proptest` dev-dependency is replaced by this in-tree
//! implementation of the surface the workspace's property tests use:
//! the [`Strategy`] trait with `prop_map`/`prop_recursive`, range and
//! tuple strategies, a small regex-subset string strategy,
//! [`collection::vec`]/[`collection::btree_set`], and the
//! [`proptest!`]/[`prop_assert!`]/[`prop_assume!`]/[`prop_oneof!`]
//! macros.
//!
//! Differences from upstream: sampling is purely random (no shrinking,
//! no regression persistence) and each test case draws from a
//! deterministic per-case RNG, so failures reproduce exactly across
//! runs and machines.

#![warn(missing_docs)]

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use rand::rngs::StdRng;
    use std::ops::Range;
    use std::rc::Rc;

    /// A generator of values for property tests.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<V, F: Fn(Self::Value) -> V>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy behind a cheaply clonable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }

        /// Builds a recursive strategy: `recurse` receives the strategy
        /// for the previous depth level and returns the next one; `self`
        /// is the leaf level. `_desired_size` and `_expected_branch_size`
        /// are accepted for upstream signature compatibility and ignored
        /// (depth alone bounds recursion here).
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let mut strat = self.boxed();
            for _ in 0..depth {
                strat = recurse(strat.clone()).boxed();
            }
            strat
        }
    }

    /// A type-erased, clonable strategy handle.
    pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut StdRng) -> V {
            self.0.generate(rng)
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, V, F: Fn(S::Value) -> V> Strategy for Map<S, F> {
        type Value = V;
        fn generate(&self, rng: &mut StdRng) -> V {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A uniform choice among alternative strategies (see
    /// [`prop_oneof!`](crate::prop_oneof)).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Creates a union over `arms`; each generation picks one arm
        /// uniformly.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut StdRng) -> V {
            let i = super::sample_index(rng, self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    self.start.wrapping_add(super::sample_below(rng, span) as $t)
                }
            }
        )*};
    }
    int_range_strategy!(i64, u64, u32, usize, i32, u16, u8, i8, i16);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            self.start + super::unit_f64(rng) * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut StdRng) -> f32 {
            self.start + (super::unit_f64(rng) as f32) * (self.end - self.start)
        }
    }

    /// String strategies from a small regex subset: literal characters,
    /// character classes `[a-z0-9_]` (ranges and single characters), and
    /// repetitions `{n}` / `{m,n}`.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut StdRng) -> String {
            super::string::generate_pattern(self, rng)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// A strategy for `Vec`s with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// The result of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.size.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for `BTreeSet`s with cardinality drawn from `size`
    /// (best effort: duplicates are retried a bounded number of times).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// The result of [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let n = self.size.clone().generate(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0;
            while out.len() < n && attempts < 20 * (n + 1) {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

mod string {
    use rand::rngs::StdRng;

    /// Generates a string from the regex subset documented on the
    /// `&str` [`Strategy`](crate::strategy::Strategy) impl.
    pub fn generate_pattern(pattern: &str, rng: &mut StdRng) -> String {
        let mut out = String::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let candidates: Vec<char> = if c == '[' {
                let mut set = Vec::new();
                let mut pending: Option<char> = None;
                while let Some(d) = chars.next() {
                    if d == ']' {
                        break;
                    }
                    let range_hi = pending
                        .filter(|_| d == '-')
                        .and_then(|lo| chars.next_if(|&n| n != ']').map(|hi| (lo, hi)));
                    if let Some((lo, hi)) = range_hi {
                        set.pop();
                        set.extend(lo..=hi);
                        pending = None;
                    } else {
                        set.push(d);
                        pending = Some(d);
                    }
                }
                set
            } else {
                vec![c]
            };
            // Optional repetition {n} or {m,n}.
            let (lo, hi) = if chars.peek() == Some(&'{') {
                chars.next();
                let mut spec = String::new();
                for d in chars.by_ref() {
                    if d == '}' {
                        break;
                    }
                    spec.push(d);
                }
                match spec.split_once(',') {
                    Some((a, b)) => (a.trim().parse().unwrap_or(1), b.trim().parse().unwrap_or(1)),
                    None => {
                        let n = spec.trim().parse().unwrap_or(1);
                        (n, n)
                    }
                }
            } else {
                (1usize, 1usize)
            };
            let n = lo + super::sample_below(rng, (hi - lo + 1) as u64) as usize;
            for _ in 0..n {
                let i = super::sample_index(rng, candidates.len());
                out.push(candidates[i]);
            }
        }
        out
    }
}

pub mod test_runner {
    //! Test-run configuration and deterministic per-case seeding.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Configuration for a `proptest!` block (upstream name:
    /// `ProptestConfig`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases generated per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }

    /// The deterministic RNG for case number `case`.
    pub fn case_rng(case: u64) -> StdRng {
        StdRng::seed_from_u64(0xD06F00D_u64 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

pub mod prelude {
    //! One-stop import for property tests, mirroring
    //! `proptest::prelude::*`.
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

use rand::rngs::StdRng;
use rand::RngCore;

/// A uniform draw below `n` (internal helper; slight modulo bias is
/// irrelevant for test-case generation).
fn sample_below(rng: &mut StdRng, n: u64) -> u64 {
    if n <= 1 {
        return 0;
    }
    rng.next_u64() % n
}

fn sample_index(rng: &mut StdRng, len: usize) -> usize {
    sample_below(rng, len as u64) as usize
}

fn unit_f64(rng: &mut StdRng) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Declares property tests. Each `#[test] fn name(arg in strategy, ...)`
/// inside the block becomes a standard test that generates
/// `config.cases` deterministic cases and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::test_runner::Config::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);
     $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            for case in 0..config.cases {
                let mut __proptest_rng = $crate::test_runner::case_rng(case as u64);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __proptest_rng);)+
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (move || { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(msg) = outcome {
                    panic!("proptest case {case} of {}: {msg}", stringify!($name));
                }
            }
        }
    )*};
}

/// Asserts a condition inside a `proptest!` body (fails the case with a
/// message instead of panicking directly).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err(
                format!("assertion failed: {:?} != {:?}", a, b));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// A uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::case_rng(0);
        for _ in 0..200 {
            let x = (3i64..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
            let u = (0usize..1).generate(&mut rng);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = crate::test_runner::case_rng(1);
        for _ in 0..100 {
            let s = "[a-z]{1,6}".generate(&mut rng);
            assert!((1..=6).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
            let t = "ab[0-9]{2}".generate(&mut rng);
            assert!(t.starts_with("ab") && t.len() == 4, "{t:?}");
        }
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = crate::test_runner::case_rng(2);
        for _ in 0..50 {
            let v = crate::collection::vec(0i64..5, 2..7).generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            let s = crate::collection::btree_set("[a-z]{1,6}", 1..6).generate(&mut rng);
            assert!(!s.is_empty() && s.len() < 6);
        }
    }

    #[test]
    fn oneof_map_and_recursive_compose() {
        let mut rng = crate::test_runner::case_rng(3);
        let leaf = prop_oneof![
            (0i64..10).prop_map(|i| i.to_string()),
            (0usize..3).prop_map(|i| format!("v{i}")),
        ];
        let expr = leaf.prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| format!("({a} + {b})"))
        });
        for _ in 0..50 {
            let s = expr.generate(&mut rng);
            assert!(!s.is_empty());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_runs(x in 0i64..100, y in 0i64..100) {
            prop_assume!(x != 13);
            prop_assert!(x + y >= x, "monotonic: {} {}", x, y);
            prop_assert_eq!(x + y, y + x);
        }
    }
}
