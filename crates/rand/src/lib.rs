//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! This workspace builds in environments with no access to a crates
//! registry, so the external `rand` dependency is replaced by this
//! in-tree implementation of the exact API surface the workspace uses:
//! [`RngCore`], [`SeedableRng`], and [`rngs::StdRng`].
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ (public domain,
//! Blackman & Vigna) seeded through SplitMix64 — a deterministic,
//! high-quality, non-cryptographic stream. It is **not** bit-compatible
//! with upstream `rand`'s ChaCha12-based `StdRng`; all seeds and
//! statistical tolerances in this repository are calibrated against this
//! stream.

#![warn(missing_docs)]

/// The core trait for random number generators: an endless stream of
/// uniform bits, consumed 32 or 64 at a time.
pub trait RngCore {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with uniformly random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed, giving
/// reproducible streams.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it into a full seed
    /// with SplitMix64 so that nearby integer seeds give unrelated
    /// streams.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: the recommended seeding sequence for xoshiro generators.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// # Examples
    ///
    /// ```
    /// use rand::rngs::StdRng;
    /// use rand::{RngCore, SeedableRng};
    /// let mut a = StdRng::seed_from_u64(1);
    /// let mut b = StdRng::seed_from_u64(1);
    /// assert_eq!(a.next_u64(), b.next_u64());
    /// ```
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> StdRng {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is the one fixed point of xoshiro;
            // displace it to an arbitrary nonzero constant.
            if s == [0, 0, 0, 0] {
                s = [
                    0x0DDB_1A5E_5BAD_5EED,
                    0xCAFE_F00D_D15E_A5E5,
                    0x0123_4567_89AB_CDEF,
                    0xFEDC_BA98_7654_3210,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngCore, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|b| *b != 0));
    }

    #[test]
    fn zero_seed_is_displaced() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        assert_ne!(rng.next_u64(), 0);
    }

    #[test]
    fn trait_objects_and_reborrows_work() {
        fn draw(rng: &mut dyn RngCore) -> u64 {
            rng.next_u64()
        }
        let mut rng = StdRng::seed_from_u64(5);
        let a = draw(&mut rng);
        let mut boxed: Box<dyn RngCore> = Box::new(StdRng::seed_from_u64(5));
        assert_eq!(a, boxed.next_u64());
    }

    #[test]
    fn u64_output_looks_uniform_in_top_bits() {
        // Crude sanity: mean of uniform_unit-style draws near 0.5.
        let mut rng = StdRng::seed_from_u64(11);
        let n = 10_000;
        let mean: f64 = (0..n)
            .map(|_| (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
