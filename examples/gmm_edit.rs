//! Incremental translation under a program edit (Section 6): change a
//! hyperparameter of the Gaussian mixture program (Listing 5) and
//! translate the trace by propagating the change through the dependency
//! graph — visiting only the cluster centers, not the data points.
//!
//! Run with: `cargo run --release --example gmm_edit`

use depgraph::{ExecGraph, IncrementalTranslator};
use incremental_ppl::prelude::*;
use models::gmm::{gmm_correspondence, gmm_program};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() -> Result<(), PplError> {
    let (n, k) = (1_000, 10);
    let p = gmm_program(10.0, n, k);
    let q = gmm_program(20.0, n, k); // the edit: prior std 10 -> 20

    let mut rng = StdRng::seed_from_u64(3);
    let graph = ExecGraph::simulate(&p, &mut rng)?;
    graph.warm_index();
    println!(
        "trace of P has {} random choices (K={k} centers + 2N={})",
        graph.num_choices(),
        2 * n
    );

    // Section 6: diff the programs, derive the correspondence, propagate.
    let optimized = IncrementalTranslator::from_edit(p.clone(), q.clone());
    let start = Instant::now();
    let result = optimized.translate_graph(&graph, &mut rng)?;
    let optimized_time = start.elapsed();
    println!(
        "optimized translation: visited {} statements, skipped {}, log-weight {:.4}, {:?}",
        result.stats.visited,
        result.stats.skipped,
        result.log_weight.log(),
        optimized_time
    );

    // Section 5 baseline for comparison: visits every trace element.
    let baseline = CorrespondenceTranslator::new(p.clone(), q, gmm_correspondence());
    let trace = graph.to_trace()?;
    let start = Instant::now();
    let out = baseline.translate(&trace, &mut rng)?;
    let baseline_time = start.elapsed();
    println!(
        "baseline translation: log-weight {:.4}, {:?}",
        out.log_weight.log(),
        baseline_time
    );
    println!(
        "speedup: {:.1}x (weights agree to {:.2e})",
        baseline_time.as_secs_f64() / optimized_time.as_secs_f64().max(1e-12),
        (out.log_weight.log() - result.log_weight.log()).abs()
    );
    Ok(())
}
