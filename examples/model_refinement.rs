//! Model refinement: the Figure 1 burglary example, end to end.
//!
//! Mr. Holmes refines his alarm model with an earthquake cause. Instead
//! of re-running inference on the refined model, posterior traces of the
//! original model are *translated*.
//!
//! Run with: `cargo run --example model_refinement`

use incremental_ppl::prelude::*;
use models::burglary;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), PplError> {
    let mut rng = StdRng::seed_from_u64(1);

    // Exact prior/posterior bars of Figure 1.
    let e_p = Enumeration::run(&burglary::original)?;
    let e_q = Enumeration::run(&burglary::refined)?;
    let burgled = |t: &Trace| t.return_value().unwrap().truthy().unwrap();
    println!(
        "original: prior {:.3}  posterior {:.3}",
        e_p.prior_probability(burgled),
        e_p.probability(burgled)
    );
    println!(
        "refined:  prior {:.3}  posterior {:.3}",
        e_q.prior_probability(burgled),
        e_q.probability(burgled)
    );

    // Translate 5,000 exact posterior traces of the original model.
    let sampler = inference::ExactPosterior::new(&burglary::original)?;
    let particles = ParticleCollection::from_traces(sampler.samples(5_000, &mut rng));
    let translator = CorrespondenceTranslator::new(
        burglary::original,
        burglary::refined,
        burglary::correspondence(),
    );
    let adapted = infer(
        &translator,
        None,
        &particles,
        &SmcConfig::translate_only(),
        &mut rng,
    )?;
    println!(
        "incremental estimate of refined posterior: {:.4} (exact {:.4})",
        adapted.probability(burgled)?,
        e_q.probability(burgled)
    );

    // The exact translator error of the refinement (Eq. 4 / Section 5.3).
    let report = incremental::translator_error(
        &burglary::original,
        &burglary::refined,
        &burglary::correspondence(),
    )?;
    println!(
        "translator error eps(R) = {:.4} = semantic {:.4} + forward-sampling {:.4} + backward-sampling {:.4}",
        report.epsilon,
        report.semantic_term,
        report.forward_sampling_term,
        report.backward_sampling_term
    );
    Ok(())
}
