//! Quickstart: define two related models, translate posterior samples of
//! the first into weighted posterior samples of the second, and compare
//! the estimate against exact enumeration.
//!
//! Run with: `cargo run --example quickstart`

use incremental_ppl::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), PplError> {
    // P: a biased coin observed through a noisy channel.
    let p = |h: &mut dyn Handler| -> Result<Value, PplError> {
        let x = h.sample(addr!["x"], Dist::flip(0.5))?;
        let p_obs = if x.truthy()? { 0.8 } else { 0.2 };
        h.observe(addr!["o"], Dist::flip(p_obs), Value::Bool(true))?;
        Ok(x)
    };
    // Q: the same latent with a much sharper observation channel.
    let q = |h: &mut dyn Handler| -> Result<Value, PplError> {
        let x = h.sample(addr!["x"], Dist::flip(0.5))?;
        let p_obs = if x.truthy()? { 0.95 } else { 0.05 };
        h.observe(addr!["o"], Dist::flip(p_obs), Value::Bool(true))?;
        Ok(x)
    };

    let mut rng = StdRng::seed_from_u64(42);

    // Posterior samples of P, here exactly (P is small and discrete).
    let posterior_p = inference::ExactPosterior::new(&p)?;
    let particles = ParticleCollection::from_traces(posterior_p.samples(10_000, &mut rng));

    // A trace translator using the identity correspondence on `x`.
    let translator = CorrespondenceTranslator::new(p, q, Correspondence::identity_on(["x"]));

    // One SMC step (Algorithm 2): translate + reweight.
    let adapted = infer(
        &translator,
        None,
        &particles,
        &SmcConfig::translate_only(),
        &mut rng,
    )?;

    let x_true = |t: &Trace| t.value(&addr!["x"]).unwrap().truthy().unwrap();
    let estimate = adapted.probability(x_true)?;
    let exact = Enumeration::run(&q)?.probability(x_true);

    println!("incremental estimate of Q's posterior P(x = 1): {estimate:.4}");
    println!("exact (by enumeration):                         {exact:.4}");
    println!(
        "effective sample size: {:.1} of {}",
        adapted.ess(),
        adapted.len()
    );
    Ok(())
}
