//! Robust Bayesian regression (Section 7.2): translate exact conjugate
//! posterior samples of a plain regression into the robust
//! outlier-tolerant model, and compare against from-scratch MCMC.
//!
//! Run with: `cargo run --release --example robust_regression`

use incremental_ppl::prelude::*;
use inference::stats::mean;
use models::data::hospital::HospitalData;
use models::regression::{
    addr_slope, exact_posterior_traces, regression_correspondence, LinRegModel, NoOutlierParams,
    OutlierParams, RobustRegModel,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), PplError> {
    let data = HospitalData::generate(150, 0.08, 11);
    println!(
        "synthetic hospital data: {} points, {} outliers, true slope {:.2}",
        data.len(),
        data.outlier_indices.len(),
        data.true_slope
    );

    let p_model = LinRegModel {
        params: NoOutlierParams::default(),
        xs: data.xs.clone(),
        ys: data.ys.clone(),
    };
    let q_model = RobustRegModel {
        params: OutlierParams::default(),
        xs: data.xs.clone(),
        ys: data.ys.clone(),
    };

    let mut rng = StdRng::seed_from_u64(5);
    let particles = exact_posterior_traces(&p_model, 100, &mut rng)?;
    let naive_slope = particles.estimate(|t| t.value(&addr_slope()).unwrap().as_real().unwrap())?;
    println!("conjugate (non-robust) posterior mean slope: {naive_slope:.3}");

    let translator =
        CorrespondenceTranslator::new(p_model, q_model.clone(), regression_correspondence());
    let adapted = infer(
        &translator,
        None,
        &particles,
        &SmcConfig::translate_only(),
        &mut rng,
    )?;
    let robust_slope = adapted.estimate(|t| t.value(&addr_slope()).unwrap().as_real().unwrap())?;
    println!("incremental robust posterior mean slope:     {robust_slope:.3}");
    println!(
        "effective sample size: {:.1} of {}",
        adapted.ess(),
        adapted.len()
    );

    // A short from-scratch MCMC run for comparison.
    let kernel = inference::IndependentMetropolisCycle::new(q_model.clone());
    let mut chain = simulate(&q_model, &mut rng)?;
    let mut slopes = Vec::new();
    for _ in 0..20 {
        chain = kernel.step(&chain, &mut rng)?;
        slopes.push(chain.value(&addr_slope()).unwrap().as_real().unwrap());
    }
    println!(
        "20 sweeps of from-scratch MCMC give slope:   {:.3}",
        mean(&slopes)
    );
    Ok(())
}
