//! Typo correction with a higher-order HMM (Section 7.3): translate
//! exact FFBS samples of a first-order HMM into a second-order HMM and
//! decode a noisy word.
//!
//! Run with: `cargo run --release --example typo_correction`

use std::sync::Arc;

use incremental_ppl::prelude::*;
use models::data::typo::{indices_to_word, train_models, TypoCorpus};
use models::hmm_model::{
    addr_hidden, exact_first_order_traces, hmm_correspondence, per_char_posterior_prob,
    FirstOrderHmmModel, SecondOrderHmmModel,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), PplError> {
    // Train both HMMs on a synthetic corpus of (intended, typed) pairs.
    let corpus = TypoCorpus::generate(12_000, 0.2, 99);
    let (first, second) = train_models(&corpus);
    let (first, second) = (Arc::new(first), Arc::new(second));

    let test = TypoCorpus::generate(5, 0.2, 100);
    let mut rng = StdRng::seed_from_u64(17);

    for pair in &test.pairs {
        let p_model = FirstOrderHmmModel {
            params: Arc::clone(&first),
            observations: pair.typed.clone(),
        };
        let q_model = SecondOrderHmmModel {
            params: Arc::clone(&second),
            observations: pair.typed.clone(),
        };
        let translator =
            CorrespondenceTranslator::new(p_model.clone(), q_model, hmm_correspondence());

        // 30 exact FFBS traces of the first-order model, translated.
        let input = exact_first_order_traces(&p_model, 30, &mut rng)?;
        let adapted = infer(
            &translator,
            None,
            &input,
            &SmcConfig::translate_only(),
            &mut rng,
        )?;

        // Decode: the per-position posterior mode.
        let mut decoded = Vec::new();
        for i in 0..pair.typed.len() {
            let mut best = (0usize, -1.0);
            for s in 0..26 {
                let prob = adapted.probability(|t| {
                    t.value(&addr_hidden(i))
                        .map(|v| v.num_eq(&Value::Int(s as i64)))
                        .unwrap_or(false)
                })?;
                if prob > best.1 {
                    best = (s, prob);
                }
            }
            decoded.push(best.0);
        }
        let pc = per_char_posterior_prob(&adapted, &pair.intended)?;
        println!(
            "typed {:<12} decoded {:<12} intended {:<12} per-char P(truth) = {:.2}",
            indices_to_word(&pair.typed),
            indices_to_word(&decoded),
            indices_to_word(&pair.intended),
            pc
        );
    }
    Ok(())
}
