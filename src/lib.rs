//! # incremental-ppl — incremental inference for probabilistic programs
//!
//! An umbrella crate re-exporting the whole workspace, a faithful
//! reproduction of *Incremental Inference for Probabilistic Programs*
//! (Cusumano-Towner, Bichsel, Gehr, Vechev, Mansinghka — PLDI 2018):
//!
//! - [`ppl`] — the probabilistic language substrate: surface language,
//!   traced interpreters, traces, distributions, exact enumeration;
//! - [`incremental`] — trace translators and SMC (the paper's primary
//!   contribution: Sections 4–5);
//! - [`inference`] — baseline samplers (MH, Gibbs, rejection, importance)
//!   and exact substrates (FFBS, conjugate regression);
//! - [`depgraph`] — the dependency-tracking runtime and edit-derived
//!   correspondences (Section 6);
//! - [`models`] — the evaluation model zoo and synthetic data sets.
//!
//! # Quickstart
//!
//! ```
//! use incremental_ppl::prelude::*;
//! use rand::SeedableRng;
//!
//! // P: a coin with a noisy observation.
//! let p = |h: &mut dyn Handler| -> Result<Value, PplError> {
//!     let x = h.sample(addr!["x"], Dist::flip(0.5))?;
//!     let po = if x.truthy()? { 0.8 } else { 0.2 };
//!     h.observe(addr!["o"], Dist::flip(po), Value::Bool(true))?;
//!     Ok(x)
//! };
//! // Q: the same model with a stronger observation.
//! let q = |h: &mut dyn Handler| -> Result<Value, PplError> {
//!     let x = h.sample(addr!["x"], Dist::flip(0.5))?;
//!     let po = if x.truthy()? { 0.95 } else { 0.05 };
//!     h.observe(addr!["o"], Dist::flip(po), Value::Bool(true))?;
//!     Ok(x)
//! };
//! let translator = CorrespondenceTranslator::new(p, q, Correspondence::identity_on(["x"]));
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let posterior_p = inference::ExactPosterior::new(&p)?;
//! let particles = ParticleCollection::from_traces(posterior_p.samples(5_000, &mut rng));
//! let adapted = infer(&translator, None, &particles, &SmcConfig::translate_only(), &mut rng)?;
//! let estimate = adapted.probability(|t| t.value(&addr!["x"]).unwrap().truthy().unwrap())?;
//! assert!((estimate - 0.95).abs() < 0.05);
//! # Ok::<(), PplError>(())
//! ```

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

pub use depgraph;
pub use incremental;
pub use inference;
pub use models;
pub use ppl;

/// Everything needed for typical incremental-inference workflows.
pub mod prelude {
    pub use incremental::{
        infer, infer_without_weights, resample, run_sequence, Correspondence,
        CorrespondenceTranslator, McmcKernel, Particle, ParticleCollection, ResamplePolicy,
        ResampleScheme, SmcConfig, Stage, TraceTranslator, Translated,
    };
    pub use ppl::dist::Dist;
    pub use ppl::handlers::{generate, score, simulate};
    pub use ppl::{
        addr, Address, ChoiceMap, Enumeration, Handler, LogWeight, Model, PplError, Trace, Value,
    };
}
