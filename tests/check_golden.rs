//! Golden renderings for the static checker's diagnostic codes: each
//! fixture under `tests/golden/diagnostics/` pins the exact span, stable
//! code, and message text of one check, so accidental wording or
//! numbering drift fails loudly. The same fixtures serve as the seeded
//! negative inputs for the CI lint gate.

use std::fs;
use std::path::PathBuf;

use ppl_cli::cmd_check;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/diagnostics")
}

/// Renders a fixture the way the `ppl check` binary would print it:
/// stdout text on success, the error message (plus newline) on failure.
fn rendered(name: &str) -> String {
    let source = fs::read_to_string(fixture_dir().join(format!("{name}.ppl"))).unwrap();
    match cmd_check(&source, false) {
        Ok(out) => out,
        Err(e) => format!("{}\n", e.message),
    }
}

fn expected(name: &str) -> String {
    fs::read_to_string(fixture_dir().join(format!("{name}.expected"))).unwrap()
}

#[test]
fn diagnostic_renderings_match_the_golden_files() {
    for name in ["ppl010", "ppl011", "ppl012", "ppl013"] {
        assert_eq!(rendered(name), expected(name), "fixture {name}");
    }
}

#[test]
fn warning_fixtures_fail_only_under_deny_warnings() {
    for name in ["ppl010", "ppl011", "ppl012"] {
        let source = fs::read_to_string(fixture_dir().join(format!("{name}.ppl"))).unwrap();
        assert!(cmd_check(&source, false).is_ok(), "fixture {name}");
        let err = cmd_check(&source, true).unwrap_err();
        assert_eq!(err.code, 1, "fixture {name}");
    }
}

#[test]
fn error_fixture_fails_with_or_without_deny_warnings() {
    let source = fs::read_to_string(fixture_dir().join("ppl013.ppl")).unwrap();
    assert_eq!(cmd_check(&source, false).unwrap_err().code, 1);
    assert_eq!(cmd_check(&source, true).unwrap_err().code, 1);
}
