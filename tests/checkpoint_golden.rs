//! Golden-file test pinning the on-disk checkpoint format (v1).
//!
//! Crash-safe resume only works if every build of this workspace can read
//! checkpoints written by every other build, so the rendered bytes are
//! pinned the same way `trace_io_golden.rs` pins the collection format.
//! The companion corruption test proves a damaged checkpoint is rejected
//! with a typed error — never silently resumed.
//!
//! Regenerate with `BLESS=1 cargo test --test checkpoint_golden` after an
//! *intentional* format change only.

use incremental::{Checkpoint, CheckpointError, FailureKind, ParticleFailure, StepReport};
use ppl::{addr, ChoiceMap, PplError, Value};

const GOLDEN_PATH: &str = "tests/golden/checkpoint_v1.ckpt";

/// A deterministic checkpoint exercising every field the format carries:
/// multiple ESS entries (including a non-representable-in-decimal one),
/// clean and dirty step reports, every failure kind, a non-finite weight,
/// and particles with nested/indexed addresses and negative log-weights.
///
/// All diagnostic messages are single-line so the reference round-trips
/// exactly (multiline messages flatten lossily by design).
fn reference_checkpoint() -> Checkpoint {
    let mut m1 = ChoiceMap::new();
    m1.insert(addr!["x"], Value::Bool(true));
    m1.insert(addr!["mu", 2], Value::Real(0.1 + 0.2));
    m1.insert(addr!["state", 0, "inner"], Value::Int(-7));
    let mut m2 = ChoiceMap::new();
    m2.insert(addr!["x"], Value::Bool(false));
    m2.insert(addr!["needs quoting", 1], Value::Real(-1.5e-3));
    Checkpoint {
        step: 2,
        base_seed: 424_242,
        fingerprint: 0xDEAD_BEEF_CAFE_F00D,
        ess_history: vec![64.0, 1.0 / 3.0],
        reports: vec![
            StepReport {
                step: 0,
                input_particles: 64,
                output_particles: 64,
                ess: 64.0,
                dropped: 0,
                retries: 2,
                recovered: 1,
                failures: vec![],
                resampled: true,
                collapse_recovered: false,
            },
            StepReport {
                step: 1,
                input_particles: 64,
                output_particles: 61,
                ess: 1.0 / 3.0,
                dropped: 3,
                retries: 0,
                recovered: 0,
                failures: vec![
                    ParticleFailure {
                        step: 1,
                        particle: 5,
                        attempts: 1,
                        kind: FailureKind::Error(PplError::Other("division by zero".to_string())),
                    },
                    ParticleFailure {
                        step: 1,
                        particle: 17,
                        attempts: 3,
                        kind: FailureKind::Panic("index out of bounds".to_string()),
                    },
                    ParticleFailure {
                        step: 1,
                        particle: 23,
                        attempts: 1,
                        kind: FailureKind::Timeout { waited_ms: 250 },
                    },
                    ParticleFailure {
                        step: 1,
                        particle: 40,
                        attempts: 1,
                        kind: FailureKind::NonFiniteWeight(f64::INFINITY),
                    },
                ],
                resampled: false,
                collapse_recovered: true,
            },
        ],
        particles: vec![(m1, -0.5), (m2, -12.345_678_901_234_567)],
    }
}

#[test]
fn rendered_checkpoint_matches_golden_file() {
    let rendered = reference_checkpoint().render();
    if std::env::var("BLESS").is_ok() {
        std::fs::create_dir_all("tests/golden").unwrap();
        std::fs::write(GOLDEN_PATH, &rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing — run with BLESS=1 to create it");
    assert_eq!(
        rendered, golden,
        "checkpoint format changed; if intentional, re-bless with BLESS=1"
    );
}

#[test]
fn golden_file_round_trips() {
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing — run with BLESS=1 to create it");
    let parsed = Checkpoint::parse(&golden).unwrap();
    let reference = reference_checkpoint();
    assert_eq!(parsed.step, reference.step);
    assert_eq!(parsed.base_seed, reference.base_seed);
    assert_eq!(parsed.fingerprint, reference.fingerprint);
    assert_eq!(parsed.ess_history, reference.ess_history);
    assert_eq!(parsed.reports, reference.reports);
    assert_eq!(parsed.particles.len(), reference.particles.len());
    for ((pm, pw), (rm, rw)) in parsed.particles.iter().zip(&reference.particles) {
        assert_eq!(pm, rm);
        assert_eq!(pw.to_bits(), rw.to_bits());
    }
}

/// Every single-bit flip anywhere in the golden file must either fail to
/// parse with a typed [`CheckpointError`] or (for flips confined to
/// comments / insignificant whitespace) parse to exactly the canonical
/// checkpoint — a corrupted file is never silently resumed as different
/// data. Probing every 7th bit keeps the test fast while still covering
/// every byte of the file.
#[test]
fn bit_flipped_golden_is_rejected_or_benign() {
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing — run with BLESS=1 to create it");
    let canonical = Checkpoint::parse(&golden).unwrap();
    let bytes = golden.as_bytes();
    let mut rejected = 0_usize;
    for bit in (0..bytes.len() * 8).step_by(7) {
        let mut corrupted = bytes.to_vec();
        corrupted[bit / 8] ^= 1 << (bit % 8);
        let Ok(text) = String::from_utf8(corrupted) else {
            continue; // not valid UTF-8 — the loader rejects it earlier
        };
        match Checkpoint::parse(&text) {
            Err(
                CheckpointError::ChecksumMismatch { .. }
                | CheckpointError::Corrupt { .. }
                | CheckpointError::VersionMismatch { .. },
            ) => rejected += 1,
            Err(other) => panic!("unexpected error kind for bit {bit}: {other}"),
            Ok(reparsed) => assert_eq!(
                reparsed, canonical,
                "bit flip {bit} silently changed the checkpoint"
            ),
        }
    }
    assert!(
        rejected > bytes.len() / 2,
        "suspiciously few rejections ({rejected}) — is the checksum being checked?"
    );
}
