//! Differential kill-and-resume tests for the crash-safe sequence runner.
//!
//! The contract under test: a supervised edit-sequence run that is killed
//! mid-sequence and resumed from its last durable checkpoint produces a
//! final particle collection **bit-identical** to an uninterrupted run —
//! for serial and pooled execution, for flat-trace and graph-native
//! particle representations, and with ESS-triggered resampling enabled
//! (so the per-stage resampling seeds are exercised, not just
//! translation). "Bit-identical" is checked through
//! [`collection_checksum`], which hashes the serialized choice maps and
//! exact log-weight bits.

use std::path::PathBuf;
use std::sync::Arc;

use depgraph::{
    resume_collection, run_edit_sequence_flat_supervised, run_edit_sequence_supervised, ExecGraph,
};
use incremental::{
    collection_checksum, Checkpoint, CheckpointError, FailurePolicy, ParticleCollection,
    ParticleState, ResamplePolicy, SequenceRun, SmcConfig, SmcError, StageObserver, StagePolicy,
    StageSnapshot, StepReport,
};
use ppl::ast::Program;
use ppl::handlers::simulate;
use ppl::parse;
use rand::rngs::StdRng;
use rand::SeedableRng;

const PARTICLES: usize = 120;
const SEED: u64 = 20_260_808;

/// A 4-program (3-stage) observation-strength edit history over a small
/// latent chain. Stage 0's program is uninformative enough that prior
/// simulations serve as its posterior samples.
fn programs() -> Vec<Program> {
    chain_programs(&[0.5, 0.6, 0.8, 0.9])
}

fn chain_programs(strengths: &[f64]) -> Vec<Program> {
    strengths
        .iter()
        .map(|hi| {
            let lo = 1.0 - hi;
            parse(&format!(
                "n = 3; prev = 1;\n\
                 for i in [0..n) {{\n\
                   x = flip(prev ? 0.7 : 0.3) @ x;\n\
                   observe(flip(x ? {hi} : {lo}) @ o == 1);\n\
                   prev = x;\n\
                 }}\n\
                 return prev;"
            ))
            .expect("chain program parses")
        })
        .collect()
}

fn initial(ps: &[Program]) -> ParticleCollection {
    let mut rng = StdRng::seed_from_u64(7);
    let traces: Vec<_> = (0..PARTICLES)
        .map(|_| simulate(&ps[0], &mut rng).expect("prior simulation"))
        .collect();
    ParticleCollection::from_traces(traces)
}

/// ESS-triggered resampling, so resumed runs must also reproduce the
/// resampling RNG stream (derived from `resample_seed(base_seed, step)`).
fn config() -> SmcConfig {
    SmcConfig {
        resample: ResamplePolicy::EssBelow(0.9),
        ..SmcConfig::default()
    }
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ppl-ckpt-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Checksum of a collection's serialized flat form.
fn checksum<S: ParticleState>(collection: &ParticleCollection<S>) -> u64 {
    let flat = collection.flatten().expect("flatten");
    let entries: Vec<_> = flat
        .iter()
        .map(|p| (p.trace.to_choice_map(), p.log_weight.log()))
        .collect();
    collection_checksum(&entries)
}

/// An observer that saves every stage checkpoint into `dir` and then
/// simulates a crash (kills the run) right after writing the checkpoint
/// for `crash_after` completed stages.
fn crashing_saver<S: ParticleState>(
    ps: &[Program],
    dir: PathBuf,
    crash_after: usize,
) -> impl FnMut(&StageSnapshot<'_, S>) -> Result<(), SmcError> + '_ {
    move |snap| {
        let fp = depgraph::program_fingerprint(&ps[snap.step]);
        let ck = Checkpoint::from_snapshot(snap, SEED, fp).map_err(SmcError::Eval)?;
        ck.save(&dir)
            .map_err(|e| SmcError::Internal(e.to_string()))?;
        if snap.step == crash_after {
            return Err(SmcError::Internal("simulated crash (SIGKILL)".to_string()));
        }
        Ok(())
    }
}

fn run_graph(
    ps: &[Program],
    start: &ParticleCollection,
    start_step: usize,
    prior_ess: &[f64],
    prior_reports: &[StepReport],
    threads: usize,
    observer: Option<&mut StageObserver<'_, Arc<ExecGraph>>>,
) -> Result<SequenceRun<Arc<ExecGraph>>, SmcError> {
    run_edit_sequence_supervised(
        ps,
        start,
        start_step,
        prior_ess,
        prior_reports,
        &config(),
        &FailurePolicy::FailFast,
        &StagePolicy::checkpoint_every(1),
        SEED,
        threads,
        observer,
    )
}

fn run_flat(
    ps: &[Program],
    start: &ParticleCollection,
    start_step: usize,
    prior_ess: &[f64],
    prior_reports: &[StepReport],
    threads: usize,
    observer: Option<&mut StageObserver<'_, ppl::Trace>>,
) -> Result<SequenceRun, SmcError> {
    run_edit_sequence_flat_supervised(
        ps,
        start,
        start_step,
        prior_ess,
        prior_reports,
        &config(),
        &FailurePolicy::FailFast,
        &StagePolicy::checkpoint_every(1),
        SEED,
        threads,
        observer,
    )
}

#[test]
fn graph_native_kill_and_resume_is_bit_identical() {
    let ps = programs();
    let start = initial(&ps);
    let reference = run_graph(&ps, &start, 0, &[], &[], 1, None).expect("uninterrupted run");
    let reference_sum = checksum(reference.last());

    for threads in [1, 4] {
        let dir = temp_dir(&format!("graph-{threads}"));
        // Kill the run right after the checkpoint for 2 completed stages.
        let mut saver = crashing_saver::<Arc<ExecGraph>>(&ps, dir.clone(), 2);
        let killed = run_graph(&ps, &start, 0, &[], &[], threads, Some(&mut saver));
        assert!(killed.is_err(), "simulated crash must abort the run");

        let (_, ck) = Checkpoint::latest_in(&dir)
            .expect("scan checkpoints")
            .expect("a checkpoint was written");
        assert_eq!(ck.step, 2);
        assert_eq!(ck.ess_history.len(), 2);
        let restored = resume_collection(&ps, &ck).expect("resume from checkpoint");
        let resumed = run_graph(
            &ps,
            &restored,
            ck.step,
            &ck.ess_history,
            &ck.reports,
            threads,
            None,
        )
        .expect("resumed run");

        assert_eq!(
            checksum(resumed.last()),
            reference_sum,
            "threads={threads}: resumed collection differs from uninterrupted run"
        );
        assert_eq!(resumed.ess_history, reference.ess_history);
        assert_eq!(resumed.reports, reference.reports);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn flat_kill_and_resume_is_bit_identical() {
    let ps = programs();
    let start = initial(&ps);
    let reference = run_flat(&ps, &start, 0, &[], &[], 1, None).expect("uninterrupted run");
    let reference_sum = checksum(reference.last());

    for threads in [1, 4] {
        let dir = temp_dir(&format!("flat-{threads}"));
        let mut saver = crashing_saver::<ppl::Trace>(&ps, dir.clone(), 1);
        let killed = run_flat(&ps, &start, 0, &[], &[], threads, Some(&mut saver));
        assert!(killed.is_err(), "simulated crash must abort the run");

        let (_, ck) = Checkpoint::latest_in(&dir)
            .expect("scan checkpoints")
            .expect("a checkpoint was written");
        assert_eq!(ck.step, 1);
        let restored = resume_collection(&ps, &ck).expect("resume from checkpoint");
        let resumed = run_flat(
            &ps,
            &restored,
            ck.step,
            &ck.ess_history,
            &ck.reports,
            threads,
            None,
        )
        .expect("resumed run");

        assert_eq!(
            checksum(resumed.last()),
            reference_sum,
            "threads={threads}: resumed collection differs from uninterrupted run"
        );
        assert_eq!(resumed.ess_history, reference.ess_history);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Flat-trace and graph-native supervised runs agree bit-for-bit — the
/// same representation-independence contract `graph_native.rs` pins for
/// the legacy runners, now extended to the crash-safe path.
#[test]
fn flat_and_graph_supervised_runs_agree() {
    let ps = programs();
    let start = initial(&ps);
    let graph = run_graph(&ps, &start, 0, &[], &[], 2, None).expect("graph run");
    let flat = run_flat(&ps, &start, 0, &[], &[], 2, None).expect("flat run");
    assert_eq!(checksum(graph.last()), checksum(flat.last()));
    assert_eq!(graph.ess_history, flat.ess_history);
}

/// A checkpoint taken against one program chain must refuse to resume
/// into an edited chain whose program at that step fingerprints
/// differently: silently translating from the wrong program would
/// invalidate the SMC weights.
#[test]
fn fingerprint_mismatch_is_rejected() {
    let ps = programs();
    let start = initial(&ps);
    let dir = temp_dir("fingerprint");
    let mut saver = |snap: &StageSnapshot<'_, Arc<ExecGraph>>| -> Result<(), SmcError> {
        let fp = depgraph::program_fingerprint(&ps[snap.step]);
        let ck = Checkpoint::from_snapshot(snap, SEED, fp).map_err(SmcError::Eval)?;
        ck.save(&dir)
            .map_err(|e| SmcError::Internal(e.to_string()))?;
        Err(SmcError::Internal(
            "stop after first checkpoint".to_string(),
        ))
    };
    let _ = run_graph(&ps, &start, 0, &[], &[], 1, Some(&mut saver));
    let (_, ck) = Checkpoint::latest_in(&dir)
        .expect("scan checkpoints")
        .expect("a checkpoint was written");

    // Same chain: accepted.
    assert!(resume_collection(&ps, &ck).is_ok());
    // A chain whose program at `ck.step` differs: typed rejection.
    let edited = chain_programs(&[0.5, 0.65, 0.8, 0.9]);
    match resume_collection(&edited, &ck) {
        Err(CheckpointError::FingerprintMismatch { .. }) => {}
        other => panic!("expected FingerprintMismatch, got {other:?}"),
    }
    // A checkpoint beyond the chain: typed rejection.
    match resume_collection(&ps[..1], &ck) {
        Err(CheckpointError::StepOutOfRange { .. }) => {}
        other => panic!("expected StepOutOfRange, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
