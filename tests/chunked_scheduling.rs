//! Differential tests for chunked particle scheduling and arena-backed
//! execution-graph storage.
//!
//! Chunk size is pure dispatch granularity: every particle keeps its own
//! seed derivation, output slot, and failure isolation, so the pooled
//! translate paths must be *bit-identical* for any chunk size and any
//! thread count — including under fault injection (retry, quarantine)
//! and on the watchdog deadline path. The property test at the bottom
//! pins the arena representation down: carrying a particle as a
//! persistent execution graph (whose arena extends across translations,
//! sharing unchanged subtrees by node id) must flatten to exactly the
//! trace the flat round-trip path produces.

use std::sync::Arc;
use std::time::Duration;

use depgraph::{
    edit_chain_shared, lift_collection, run_edit_sequence_parallel_with_policy, ExecGraph,
};
use incremental::{
    run_state_sequence_parallel_with_policy, run_state_sequence_supervised, Backoff, FailurePolicy,
    FaultKind, FaultPlan, FaultSpec, FaultyTranslator, ParticleCollection, SequenceRun, SmcConfig,
    StagePolicy, StateTranslator, TraceTranslator,
};
use ppl::ast::Program;
use ppl::handlers::simulate;
use ppl::parse;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const PARTICLES: usize = 120;

/// Loop-structured whole-chain edit history (observation strengths), so
/// translation exercises indexed addresses and iteration reuse.
fn chain_source(n: usize, hi: f64) -> String {
    let lo = 1.0 - hi;
    format!(
        "n = {n}; prev = 1;\n\
         for i in [0..n) {{\n\
           x = flip(prev ? 0.7 : 0.3) @ x;\n\
           observe(flip(x ? {hi} : {lo}) @ o == 1);\n\
           prev = x;\n\
         }}\n\
         return prev;"
    )
}

fn programs() -> Vec<Program> {
    [0.5_f64, 0.6, 0.8, 0.9]
        .iter()
        .map(|hi| parse(&chain_source(4, *hi)).expect("chain program parses"))
        .collect()
}

fn initial(ps: &[Program]) -> ParticleCollection {
    let mut rng = StdRng::seed_from_u64(13);
    let traces: Vec<_> = (0..PARTICLES)
        .map(|_| simulate(&ps[0], &mut rng).expect("prior simulation"))
        .collect();
    ParticleCollection::from_traces(traces)
}

/// Asserts two flat sequence runs are bit-identical: same per-stage log
/// weights (to the bit), same choice maps, same health reports.
fn assert_bit_identical(reference: &SequenceRun, candidate: &SequenceRun, context: &str) {
    assert_eq!(
        reference.collections.len(),
        candidate.collections.len(),
        "{context}: stage count"
    );
    for (stage, (a, b)) in reference
        .collections
        .iter()
        .zip(&candidate.collections)
        .enumerate()
    {
        assert_eq!(a.len(), b.len(), "{context}: stage {stage} size");
        for (j, (pa, pb)) in a.iter().zip(b.iter()).enumerate() {
            assert_eq!(
                pa.log_weight.log().to_bits(),
                pb.log_weight.log().to_bits(),
                "{context}: stage {stage} particle {j} weight"
            );
            assert_eq!(
                pa.trace.to_choice_map(),
                pb.trace.to_choice_map(),
                "{context}: stage {stage} particle {j} choices"
            );
        }
    }
    for (a, b) in reference.reports.iter().zip(&candidate.reports) {
        assert_eq!(a.ess.to_bits(), b.ess.to_bits(), "{context}: report ess");
        assert_eq!(a.dropped, b.dropped, "{context}: report dropped");
        assert_eq!(a.retries, b.retries, "{context}: report retries");
        assert_eq!(a.recovered, b.recovered, "{context}: report recovered");
    }
}

/// The chunk sizes the suite sweeps: single-particle tasks, an uneven
/// divisor, a chunk larger than `particles / threads`, and one chunk for
/// the whole stage.
fn chunk_sizes() -> [Option<usize>; 4] {
    [Some(1), Some(7), Some(64), Some(PARTICLES)]
}

#[test]
fn chunk_size_and_thread_count_do_not_change_results() {
    let ps = programs();
    let init = initial(&ps);
    let run_with = |chunk: Option<usize>, threads: usize| {
        let config = SmcConfig::translate_only().with_chunk_size(chunk);
        let mut rng = StdRng::seed_from_u64(61);
        run_edit_sequence_parallel_with_policy(
            &ps,
            &init,
            &config,
            &FailurePolicy::FailFast,
            707,
            threads,
            &mut rng,
        )
        .unwrap()
        .flatten()
        .unwrap()
    };
    let reference = run_with(None, 1);
    for chunk in chunk_sizes() {
        for threads in [1, 3, 8] {
            let candidate = run_with(chunk, threads);
            assert_bit_identical(
                &reference,
                &candidate,
                &format!("chunk={chunk:?} threads={threads}"),
            );
        }
    }
}

/// Fault injection must hit the same particles and produce the same
/// retries/quarantines regardless of how particles are grouped into
/// dispatch chunks.
#[test]
fn chunking_is_invariant_under_fault_retry_and_drop() {
    let ps = programs();
    let init = initial(&ps);
    let shared: Vec<Arc<Program>> = ps.iter().cloned().map(Arc::new).collect();
    let lifted = lift_collection(&shared[0], &init).unwrap();
    // Retry can only recover transient faults; the permanent error is
    // reserved for the quarantine (drop) policy.
    let retry_plan = FaultPlan::new().with(FaultSpec::once(1, 4, FaultKind::Panic));
    let drop_plan = FaultPlan::new()
        .with(FaultSpec::once(1, 4, FaultKind::Panic))
        .with(FaultSpec::always(2, 9, FaultKind::Error));
    for (policy, plan) in [
        (
            FailurePolicy::Retry {
                max_attempts: 3,
                seed: 17,
            },
            retry_plan,
        ),
        (
            FailurePolicy::DropAndRenormalize { max_loss: 0.5 },
            drop_plan,
        ),
    ] {
        let run_with = |chunk: Option<usize>, threads: usize| {
            let faulty: Vec<_> = edit_chain_shared(&shared)
                .into_iter()
                .map(|t| FaultyTranslator::new(t, plan.clone()))
                .collect();
            let stages: Vec<&(dyn StateTranslator<Arc<ExecGraph>> + Sync)> = faulty
                .iter()
                .map(|t| t as &(dyn StateTranslator<Arc<ExecGraph>> + Sync))
                .collect();
            let config = SmcConfig::translate_only().with_chunk_size(chunk);
            let mut rng = StdRng::seed_from_u64(67);
            run_state_sequence_parallel_with_policy(
                &stages, &lifted, &config, &policy, 808, threads, &mut rng,
            )
            .unwrap()
            .flatten()
            .unwrap()
        };
        let reference = run_with(None, 1);
        for chunk in chunk_sizes() {
            for threads in [3, 8] {
                let candidate = run_with(chunk, threads);
                assert_bit_identical(
                    &reference,
                    &candidate,
                    &format!("{policy:?} chunk={chunk:?} threads={threads}"),
                );
            }
        }
    }
}

/// The watchdog (deadline-supervised) translate path chunks its rounds
/// too; with a deadline generous enough that nothing times out, every
/// chunk size must reproduce the unsupervised result bit-for-bit.
#[test]
fn deadline_supervised_path_is_chunk_invariant() {
    let ps = programs();
    let init = initial(&ps);
    let shared: Vec<Arc<Program>> = ps.iter().cloned().map(Arc::new).collect();
    let lifted = lift_collection(&shared[0], &init).unwrap();
    let stage_policy = StagePolicy::default()
        .with_deadline(Duration::from_secs(20))
        .with_backoff(Backoff::new(
            Duration::from_millis(5),
            2.0,
            Duration::from_millis(50),
        ));
    let run_with = |chunk: Option<usize>, threads: usize| {
        let stages: Vec<Arc<dyn StateTranslator<Arc<ExecGraph>> + Send + Sync>> =
            edit_chain_shared(&shared)
                .into_iter()
                .map(|t| Arc::new(t) as Arc<dyn StateTranslator<Arc<ExecGraph>> + Send + Sync>)
                .collect();
        let config = SmcConfig::translate_only().with_chunk_size(chunk);
        run_state_sequence_supervised(
            &stages,
            &lifted,
            0,
            &[],
            &[],
            &config,
            &FailurePolicy::FailFast,
            &stage_policy,
            909,
            threads,
            None,
        )
        .unwrap()
        .flatten()
        .unwrap()
    };
    let reference = run_with(None, 1);
    for chunk in chunk_sizes() {
        for threads in [1, 3] {
            let candidate = run_with(chunk, threads);
            assert_bit_identical(
                &reference,
                &candidate,
                &format!("deadline chunk={chunk:?} threads={threads}"),
            );
        }
    }
}

proptest! {
    /// Arena representation property: carrying a particle graph-natively
    /// across a chain of edits (each translation *extends* the previous
    /// graph's arena and shares unchanged subtrees by node id) flattens
    /// to exactly the trace — and weight — that the flat round-trip path
    /// (flatten → rebuild graph → translate) produces at every stage.
    #[test]
    fn graph_native_chain_flattens_like_flat_roundtrip(
        n in 1usize..5,
        strengths in proptest::collection::vec(5u32..95, 3..4),
        seed in 0u64..256,
    ) {
        let shared: Vec<Arc<Program>> = strengths
            .iter()
            .map(|s| {
                Arc::new(
                    parse(&chain_source(n, f64::from(*s) / 100.0)).expect("chain parses"),
                )
            })
            .collect();
        let chain = edit_chain_shared(&shared);
        let mut rng = StdRng::seed_from_u64(seed);
        let trace0 = simulate(&*shared[0], &mut rng).expect("prior simulation");
        let mut graph = ExecGraph::from_trace_shared(&shared[0], &trace0).expect("lift");
        let mut flat = trace0;
        for (step, translator) in chain.iter().enumerate() {
            let mut rng_graph = StdRng::seed_from_u64(seed ^ 0xfeed ^ step as u64);
            let result = translator.translate_graph(&graph, &mut rng_graph).expect("graph step");
            let mut rng_flat = StdRng::seed_from_u64(seed ^ 0xfeed ^ step as u64);
            let reference = translator.translate(&flat, &mut rng_flat).expect("flat step");
            let flattened = result.graph.to_trace().expect("flatten");
            prop_assert_eq!(
                flattened.to_choice_map(),
                reference.trace.to_choice_map(),
                "stage {} choices", step
            );
            prop_assert_eq!(
                result.log_weight.log().to_bits(),
                reference.log_weight.log().to_bits(),
                "stage {} weight", step
            );
            graph = result.graph;
            flat = reference.trace;
        }
    }
}
