//! Shared generators for the property-based differential suites: random
//! surface programs and the "hyperparameter edit" constant perturbation.
//! Used by `random_edits.rs` (weight-oracle differential tests) and
//! `static_slices.rs` (static impact-slice soundness tests).

#![allow(dead_code)]

use proptest::prelude::*;

/// A generator of small, runtime-safe surface programs: all variables are
/// pre-initialized, flip probabilities stay in (0, 1), no division.
pub fn program_strategy() -> impl Strategy<Value = String> {
    let stmt = prop_oneof![
        (0usize..3, 1u32..99).prop_map(|(v, p)| format!("v{v} = flip(0.{p:02});")),
        (0usize..3, 0i64..4, 1i64..5)
            .prop_map(|(v, lo, k)| format!("v{v} = uniform({lo}, {});", lo + k)),
        (0usize..3, 0usize..3, 0usize..3)
            .prop_map(|(v, a, b)| { format!("v{v} = va{a} + va{b};") }),
        (0usize..3, 1u32..99, 0usize..3, 0usize..3).prop_map(|(c, p, a, b)| {
            format!("if va{c} > 0 {{ va{a} = flip(0.{p:02}); }} else {{ va{b} = 1; }}")
        }),
        (1u32..99, 0usize..3)
            .prop_map(|(p, v)| { format!("observe(flip(0.{p:02}) == (va{v} > 0));") }),
        (0usize..3, 1i64..4, 1u32..99).prop_map(|(v, n, p)| {
            format!("for i{v} in [0..{n}) {{ va{v} = flip(0.{p:02}); }}")
        }),
    ];
    proptest::collection::vec(stmt, 1..6).prop_map(|stmts| {
        let mut src = String::from("va0 = 1; va1 = 0; va2 = 1; v0 = 0; v1 = 0; v2 = 0;\n");
        for s in stmts {
            src.push_str(&s);
            src.push('\n');
        }
        src.push_str("return va0;");
        src
    })
}

/// Perturbs every `0.XX` constant by a deterministic amount, producing a
/// semantically different but structurally identical program — the
/// "hyperparameter edit" shape.
pub fn perturb_constants(src: &str, delta: u32) -> String {
    let mut out = String::with_capacity(src.len());
    let mut chars = src.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '0' && chars.peek() == Some(&'.') {
            chars.next(); // '.'
            let mut digits = String::new();
            while chars.peek().map(|d| d.is_ascii_digit()).unwrap_or(false) {
                digits.push(chars.next().unwrap());
            }
            if digits.is_empty() {
                // Not a real literal — e.g. the `0..` of a range.
                out.push_str("0.");
                continue;
            }
            let value: u32 = digits.parse().unwrap_or(50);
            let scale = 10u32.pow(digits.len() as u32);
            // Stay strictly inside (0, scale).
            let perturbed = (value + delta) % (scale - 1) + 1;
            out.push_str(&format!("0.{perturbed:0width$}", width = digits.len()));
        } else {
            out.push(c);
        }
    }
    out
}
