//! Thread-count invariance of the compiled evaluation path.
//!
//! Every executor now runs register-lowered programs against pooled eval
//! frames (`ppl::compile`): forward execution, fresh graph builds, and
//! propagation rescoring all share per-stage compiled plans. Frames are
//! per-worker and the compile cache is process-global, so the worker
//! schedule must never leak into the numbers: a fixed-seed edit sequence
//! must produce bit-identical per-stage particle weights and choice maps
//! at 1, 3, and 8 worker threads, and the summed log-weight checksum
//! must match to the bit.

use depgraph::{run_edit_sequence_parallel_with_policy, ExecGraph};
use incremental::{FailurePolicy, ParticleCollection, SequenceRun, SmcConfig};
use ppl::ast::Program;
use ppl::handlers::simulate;
use ppl::parse;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

const PARTICLES: usize = 160;
const SEED: u64 = 0xC0FFEE;
const THREADS: [usize; 3] = [1, 3, 8];

/// A loop-structured edit history over a latent chain: propagation
/// exercises loop records, iteration skips, choice reuse, and
/// observation rescoring — all through compiled stage plans.
fn programs() -> Vec<Program> {
    [0.5_f64, 0.65, 0.8, 0.9]
        .iter()
        .map(|hi| {
            let lo = 1.0 - hi;
            parse(&format!(
                "n = 5; prev = 1;\n\
                 for i in [0..n) {{\n\
                   x = flip(prev ? 0.7 : 0.3) @ x;\n\
                   observe(flip(x ? {hi} : {lo}) @ o == 1);\n\
                   prev = x;\n\
                 }}\n\
                 return prev;"
            ))
            .expect("chain program parses")
        })
        .collect()
}

fn run(threads: usize) -> SequenceRun<Arc<ExecGraph>> {
    let programs = programs();
    let mut rng = StdRng::seed_from_u64(11);
    let traces: Vec<_> = (0..PARTICLES)
        .map(|_| simulate(&programs[0], &mut rng).expect("prior simulation"))
        .collect();
    let initial = ParticleCollection::from_traces(traces);
    let mut seq_rng = StdRng::seed_from_u64(7);
    run_edit_sequence_parallel_with_policy(
        &programs,
        &initial,
        &SmcConfig::translate_only(),
        &FailurePolicy::FailFast,
        SEED,
        threads,
        &mut seq_rng,
    )
    .expect("graph-native run")
}

/// Sum of finite per-particle log-weights in the final collection — the
/// same checksum the benchmark harness records.
fn checksum(run: &SequenceRun<Arc<ExecGraph>>) -> f64 {
    run.collections
        .last()
        .expect("at least one stage")
        .iter()
        .map(|p| p.log_weight.log())
        .filter(|w| w.is_finite())
        .sum()
}

#[test]
fn sequence_checksums_are_identical_across_thread_counts() {
    let reference = run(THREADS[0]);
    let ref_checksum = checksum(&reference);
    assert!(
        ref_checksum.is_finite(),
        "reference checksum {ref_checksum}"
    );
    for &threads in &THREADS[1..] {
        let candidate = run(threads);
        assert_eq!(
            ref_checksum.to_bits(),
            checksum(&candidate).to_bits(),
            "checksum diverged at {threads} threads"
        );
        assert_eq!(
            reference.collections.len(),
            candidate.collections.len(),
            "{threads} threads: stage count"
        );
        for (stage, (a, b)) in reference
            .collections
            .iter()
            .zip(&candidate.collections)
            .enumerate()
        {
            assert_eq!(a.len(), b.len(), "{threads} threads: stage {stage} size");
            for (j, (pa, pb)) in a.iter().zip(b.iter()).enumerate() {
                assert_eq!(
                    pa.log_weight.log().to_bits(),
                    pb.log_weight.log().to_bits(),
                    "{threads} threads: stage {stage} particle {j} weight"
                );
            }
        }
    }
}

/// The sweep above must actually have gone through the compiled path:
/// the process-global eval telemetry shows compiled executions and frame
/// reuse after a run.
#[test]
fn sweep_exercises_compiled_path() {
    let before = ppl::compile::eval_counters();
    let result = run(1);
    let after = ppl::compile::eval_counters();
    assert_eq!(result.collections.len(), programs().len() - 1);
    assert!(
        after.compiled_execs > before.compiled_execs,
        "expected compiled executions: {before:?} -> {after:?}"
    );
    assert!(
        after.compile_cache_hits + after.compile_cache_misses
            > before.compile_cache_hits + before.compile_cache_misses,
        "expected compile-cache traffic: {before:?} -> {after:?}"
    );
}
