//! Integration tests of the Section 6 pipeline: program edits, derived
//! correspondences, dependency-graph propagation, and agreement with the
//! baseline translator across crates.

use depgraph::{diff_programs, ExecGraph, IncrementalTranslator};
use incremental::{exact_weight_estimate, CorrespondenceTranslator, TraceTranslator};
use models::worked_examples::{fig7_edited, fig7_original};
use ppl::handlers::simulate;
use ppl::{addr, parse};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Figure 7: the paper's worked propagation for the edit `a = 1 → a = 2`.
#[test]
fn figure7_partial_propagation() {
    let p = fig7_original();
    let q = fig7_edited();
    let translator = IncrementalTranslator::from_edit(p.clone(), q.clone());
    let mut rng = StdRng::seed_from_u64(1);
    let graph = ExecGraph::simulate(&p, &mut rng).unwrap();
    let t = graph.to_trace().unwrap();
    let result = translator.translate_graph(&graph, &mut rng).unwrap();
    let u = result.graph.to_trace().unwrap();
    // "the change does not propagate through node b = flip(a/3), because
    // the correspondence allows one to reuse the random choice b"
    assert_eq!(u.value(&addr!["b"]), t.value(&addr!["b"]));
    // "node c = uniform(0,5) and its parents must be deleted, and
    // replaced by those in the else-branch"
    assert!(!u.has_choice(&addr!["cthen"]));
    assert!(u.has_choice(&addr!["celse"]));
    // d = flip(b/2) is untouched.
    assert_eq!(u.value(&addr!["d"]), t.value(&addr!["d"]));
    // The weight matches the exact Eq. (2) oracle.
    let corr = &translator.edit().correspondence;
    let exact = exact_weight_estimate(&p, &q, corr, &t, &u).unwrap();
    assert!((result.log_weight.log() - exact.log()).abs() < 1e-9);
}

/// The diff-derived correspondence of the GMM hyperparameter edit maps
/// all three sites, and both translators agree exactly.
#[test]
fn gmm_edit_derived_correspondence_and_agreement() {
    let p = models::gmm::gmm_program(10.0, 50, 10);
    let q = models::gmm::gmm_program(20.0, 50, 10);
    let edit = diff_programs(&p, &q);
    for site in ["center", "pick", "point"] {
        assert!(
            edit.correspondence.maps(&addr![site, 0]),
            "site {site} should correspond"
        );
    }
    let incr = IncrementalTranslator::from_edit(p.clone(), q.clone());
    let base = CorrespondenceTranslator::new(p.clone(), q, models::gmm::gmm_correspondence());
    let mut rng = StdRng::seed_from_u64(2);
    let t = simulate(&p, &mut rng).unwrap();
    let a = incr.translate(&t, &mut rng).unwrap();
    let b = base.translate(&t, &mut rng).unwrap();
    assert_eq!(a.trace.to_choice_map(), b.trace.to_choice_map());
    assert!((a.log_weight.log() - b.log_weight.log()).abs() < 1e-9);
}

/// Inserting a statement shifts auto-generated site labels; the diff
/// still matches the surviving statements and inference stays correct.
#[test]
fn insertion_edit_translates_correctly() {
    let p = parse(
        "x = flip(0.5);
         observe(flip(x ? 0.9 : 0.1) == 1);
         return x;",
    )
    .unwrap();
    let q = parse(
        "e = flip(0.1);
         x = flip(0.5);
         observe(flip((x || e) ? 0.9 : 0.1) == 1);
         return x;",
    )
    .unwrap();
    let translator = IncrementalTranslator::from_edit(p.clone(), q.clone());
    let corr = translator.edit().correspondence.clone();
    // Q's x is flip#2 (shifted by the insertion), P's x is flip#1.
    assert_eq!(corr.lookup(&addr!["flip#2"]), Some(addr!["flip#1"]));
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..25 {
        let t = simulate(&p, &mut rng).unwrap();
        let out = translator.translate(&t, &mut rng).unwrap();
        let exact = exact_weight_estimate(&p, &q, &corr, &t, &out.trace).unwrap();
        assert!((out.log_weight.log() - exact.log()).abs() < 1e-9);
        // x is reused.
        assert_eq!(out.trace.value(&addr!["flip#2"]), t.value(&addr!["flip#1"]));
    }
}

/// End-to-end incremental inference through the edit-derived translator:
/// translating exact posterior samples of P yields Q's posterior.
#[test]
fn edit_translator_drives_smc_correctly() {
    let p = parse(
        "x = flip(0.5) @ x;
         observe(flip(x ? 0.7 : 0.3) @ o == 1);
         return x;",
    )
    .unwrap();
    let q = parse(
        "x = flip(0.5) @ x;
         observe(flip(x ? 0.95 : 0.05) @ o == 1);
         return x;",
    )
    .unwrap();
    let translator = IncrementalTranslator::from_edit(p.clone(), q.clone());
    let sampler = inference::ExactPosterior::new(&p).unwrap();
    let mut rng = StdRng::seed_from_u64(4);
    let particles = incremental::ParticleCollection::from_traces(sampler.samples(40_000, &mut rng));
    let adapted = incremental::infer(
        &translator,
        None,
        &particles,
        &incremental::SmcConfig::translate_only(),
        &mut rng,
    )
    .unwrap();
    let estimate = adapted
        .probability(|t| t.value(&addr!["x"]).unwrap().truthy().unwrap())
        .unwrap();
    let exact = ppl::Enumeration::run(&q)
        .unwrap()
        .probability(|t| t.value(&addr!["x"]).unwrap().truthy().unwrap());
    assert!(
        (estimate - exact).abs() < 0.01,
        "estimate {estimate} vs exact {exact}"
    );
}

/// Iterated edits (Section 4.2 "Multiple Steps"): a chain of graph
/// translations composes and keeps exact weights.
#[test]
fn chained_graph_translations() {
    let programs: Vec<_> = [0.3, 0.5, 0.7, 0.9]
        .iter()
        .map(|p| {
            parse(&format!(
                "x = flip(0.5) @ x; observe(flip(x ? {p:?} : 0.1) @ o == 1); return x;"
            ))
            .unwrap()
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(5);
    let mut graph = ExecGraph::simulate(&programs[0], &mut rng).unwrap();
    let mut total_log_weight = 0.0;
    for window in programs.windows(2) {
        let translator = IncrementalTranslator::from_edit(window[0].clone(), window[1].clone());
        let result = translator.translate_graph(&graph, &mut rng).unwrap();
        total_log_weight += result.log_weight.log();
        graph = result.graph;
    }
    // The chain composes to the direct weight from first to last (all
    // choices reused, so only observation factors accumulate).
    let t0 = ExecGraph::simulate(&programs[0], &mut rng).unwrap();
    let _ = t0; // the chain used its own start; recompute directly:
    let first = &programs[0];
    let last = &programs[3];
    let direct = IncrementalTranslator::from_edit(first.clone(), last.clone());
    let start = ExecGraph::simulate(first, &mut rng).unwrap();
    let direct_result = direct.translate_graph(&start, &mut rng).unwrap();
    // Same x value ⇒ same weight; compare conditioned on matching x.
    let chain_x = graph
        .to_trace()
        .unwrap()
        .value(&addr!["x"])
        .unwrap()
        .clone();
    let direct_x = direct_result
        .graph
        .to_trace()
        .unwrap()
        .value(&addr!["x"])
        .unwrap()
        .clone();
    if chain_x.num_eq(&direct_x) {
        assert!((total_log_weight - direct_result.log_weight.log()).abs() < 1e-9);
    } else {
        // Different start traces: weights are per-trace; just check both
        // are finite.
        assert!(total_log_weight.is_finite());
        assert!(direct_result.log_weight.log().is_finite());
    }
}

/// Randomized cross-runtime agreement: for arbitrary small program pairs,
/// the flat-trace path of the incremental translator produces weights
/// that match the exact oracle.
#[test]
fn randomized_cross_runtime_agreement() {
    let sources = [
        (
            "a = flip(0.4) @ a; b = uniform(0, 2) @ b;
             if a { observe(flip(0.8) @ o == 1); } else { skip; }
             return b;",
            "a = flip(0.6) @ a; b = uniform(0, 2) @ b;
             if a { observe(flip(0.5) @ o == 1); } else { skip; }
             return b;",
        ),
        (
            "n = 3; s = 0;
             for i in [0..n) { s = s + flip(0.5) @ f; }
             observe(flip(s > 1 ? 0.9 : 0.2) @ o == 1);
             return s;",
            "n = 5; s = 0;
             for i in [0..n) { s = s + flip(0.5) @ f; }
             observe(flip(s > 2 ? 0.9 : 0.2) @ o == 1);
             return s;",
        ),
    ];
    for (sp, sq) in sources {
        let p = parse(sp).unwrap();
        let q = parse(sq).unwrap();
        let translator = IncrementalTranslator::from_edit(p.clone(), q.clone());
        let corr = translator.edit().correspondence.clone();
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let t = simulate(&p, &mut rng).unwrap();
            let out = translator.translate(&t, &mut rng).unwrap();
            let exact = exact_weight_estimate(&p, &q, &corr, &t, &out.trace).unwrap();
            assert!(
                (out.log_weight.log() - exact.log()).abs() < 1e-9,
                "seed {seed}: {} vs {} for `{sq}`",
                out.log_weight.log(),
                exact.log()
            );
        }
    }
}
