//! End-to-end integration tests of the full experiment pipelines at
//! reduced scale.

use std::sync::Arc;

use incremental::{
    infer, infer_without_weights, run_sequence, Correspondence, CorrespondenceTranslator,
    ParticleCollection, ResamplePolicy, SmcConfig, Stage,
};
use inference::stats::mean;
use models::data::hospital::HospitalData;
use models::data::typo::{train_models, TypoCorpus};
use models::hmm_model::{
    addr_hidden, exact_first_order_traces, ground_truth_log_prob, hmm_correspondence, to_dp_hmm,
    FirstOrderHmmModel, SecondOrderHmmModel,
};
use models::regression::{
    addr_slope, exact_posterior_traces, regression_correspondence, LinRegModel, NoOutlierParams,
    OutlierParams, RobustRegModel,
};
use ppl::dist::Dist;
use ppl::{addr, Enumeration, Handler, PplError, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The regression pipeline: weighted translation moves the slope
/// estimate toward the robust answer; dropping the weights leaves it at
/// the non-robust answer.
#[test]
fn regression_pipeline_weights_matter() {
    let data = HospitalData::generate(120, 0.1, 5);
    let p_model = LinRegModel {
        params: NoOutlierParams::default(),
        xs: data.xs.clone(),
        ys: data.ys.clone(),
    };
    let q_model = RobustRegModel {
        params: OutlierParams::default(),
        xs: data.xs.clone(),
        ys: data.ys.clone(),
    };
    let translator =
        CorrespondenceTranslator::new(p_model.clone(), q_model, regression_correspondence());
    let mut rng = StdRng::seed_from_u64(6);
    let slope = |t: &ppl::Trace| t.value(&addr_slope()).unwrap().as_real().unwrap();

    // Average the estimates over several replications to tame weight
    // degeneracy noise.
    let (mut with_w, mut without_w, mut p_means) = (Vec::new(), Vec::new(), Vec::new());
    for _ in 0..10 {
        let particles = exact_posterior_traces(&p_model, 80, &mut rng).unwrap();
        p_means.push(particles.estimate(slope).unwrap());
        let adapted = infer(
            &translator,
            None,
            &particles,
            &SmcConfig::translate_only(),
            &mut rng,
        )
        .unwrap();
        with_w.push(adapted.estimate(slope).unwrap());
        let plain = infer_without_weights(&translator, &particles, &mut rng).unwrap();
        without_w.push(plain.estimate(slope).unwrap());
    }
    let p_mean = mean(&p_means);
    let weighted = mean(&with_w);
    let unweighted = mean(&without_w);
    // Without weights, translation cannot move the slope distribution at
    // all (slope/intercept are reused): the estimate equals P's.
    assert!(
        (unweighted - p_mean).abs() < 1e-9,
        "unweighted {unweighted} should equal P posterior mean {p_mean}"
    );
    // With weights, the estimate moves toward the true slope.
    assert!(
        (weighted - data.true_slope).abs() < (p_mean - data.true_slope).abs() + 1e-9,
        "weighted {weighted} not closer to truth {} than P mean {p_mean}",
        data.true_slope
    );
}

/// The HMM pipeline: translated FFBS traces score the ground truth at
/// least as well as the raw first-order posterior on average, and the
/// translated approximation targets the second-order posterior.
#[test]
fn hmm_pipeline_improves_over_first_order() {
    let train = TypoCorpus::generate(12_000, 0.15, 8);
    let test = TypoCorpus::generate(25, 0.15, 9);
    let (first, second) = train_models(&train);
    let (first, second) = (Arc::new(first), Arc::new(second));
    let mut rng = StdRng::seed_from_u64(10);
    let (mut lp_first, mut lp_translated) = (Vec::new(), Vec::new());
    for pair in &test.pairs {
        let p_model = FirstOrderHmmModel {
            params: Arc::clone(&first),
            observations: pair.typed.clone(),
        };
        let q_model = SecondOrderHmmModel {
            params: Arc::clone(&second),
            observations: pair.typed.clone(),
        };
        let translator =
            CorrespondenceTranslator::new(p_model.clone(), q_model, hmm_correspondence());
        let input = exact_first_order_traces(&p_model, 60, &mut rng).unwrap();
        lp_first.push(ground_truth_log_prob(&input, &pair.intended, 1e-3).unwrap());
        let adapted = infer(
            &translator,
            None,
            &input,
            &SmcConfig::translate_only(),
            &mut rng,
        )
        .unwrap();
        lp_translated.push(ground_truth_log_prob(&adapted, &pair.intended, 1e-3).unwrap());
    }
    assert!(
        mean(&lp_translated) > mean(&lp_first) - 0.05,
        "translated {} vs first-order {}",
        mean(&lp_translated),
        mean(&lp_first)
    );
}

/// FFBS inputs really are exact: their marginals match forward–backward.
#[test]
fn ffbs_marginals_check() {
    let train = TypoCorpus::generate(5_000, 0.15, 12);
    let (first, _) = train_models(&train);
    let params = Arc::new(first);
    let word = TypoCorpus::generate(1, 0.15, 13).pairs[0].typed.clone();
    let model = FirstOrderHmmModel {
        params: Arc::clone(&params),
        observations: word.clone(),
    };
    let mut rng = StdRng::seed_from_u64(14);
    let particles = exact_first_order_traces(&model, 20_000, &mut rng).unwrap();
    let dp = to_dp_hmm(&params);
    let gamma = dp.smoothed_marginals(&word);
    for (i, row) in gamma.iter().enumerate().take(word.len()) {
        let mode = (0..row.len())
            .max_by(|&a, &b| row[a].partial_cmp(&row[b]).unwrap())
            .unwrap();
        let freq = particles
            .probability(|t| {
                t.value(&addr_hidden(i))
                    .map(|v| v.num_eq(&Value::Int(mode as i64)))
                    .unwrap_or(false)
            })
            .unwrap();
        assert!(
            (freq - row[mode]).abs() < 0.02,
            "pos {i}: FFBS {freq} vs exact {}",
            row[mode]
        );
    }
}

/// A three-stage program sequence with ESS-triggered resampling tracks
/// the final posterior (the Section 4.2 "Multiple Steps" regime).
#[test]
fn sequence_with_adaptive_resampling() {
    fn stage_model(q: f64) -> impl Fn(&mut dyn Handler) -> Result<Value, PplError> + Clone {
        move |h: &mut dyn Handler| {
            let x = h.sample(addr!["x"], Dist::flip(0.5))?;
            let po = if x.truthy()? { q } else { 1.0 - q };
            h.observe(addr!["o"], Dist::flip(po), Value::Bool(true))?;
            Ok(x)
        }
    }
    let models: Vec<_> = [0.55, 0.7, 0.85, 0.95]
        .iter()
        .map(|&q| stage_model(q))
        .collect();
    let translators: Vec<_> = models
        .windows(2)
        .map(|w| {
            CorrespondenceTranslator::new(
                w[0].clone(),
                w[1].clone(),
                Correspondence::identity_on(["x"]),
            )
        })
        .collect();
    let stages: Vec<Stage> = translators
        .iter()
        .map(|t| Stage {
            translator: t,
            mcmc: None,
        })
        .collect();
    let sampler = inference::ExactPosterior::new(&models[0]).unwrap();
    let mut rng = StdRng::seed_from_u64(15);
    let initial = ParticleCollection::from_traces(sampler.samples(30_000, &mut rng));
    let config = SmcConfig {
        resample: ResamplePolicy::EssBelow(0.5),
        ..SmcConfig::default()
    };
    let run = run_sequence(&stages, &initial, &config, &mut rng).unwrap();
    let estimate = run
        .last()
        .probability(|t| t.value(&addr!["x"]).unwrap().truthy().unwrap())
        .unwrap();
    let exact = Enumeration::run(&models[3])
        .unwrap()
        .probability(|t| t.value(&addr!["x"]).unwrap().truthy().unwrap());
    assert!(
        (estimate - exact).abs() < 0.02,
        "estimate {estimate} vs exact {exact}"
    );
}

/// Degeneracy monitoring: a huge model jump collapses the ESS, which the
/// paper says should be used "to detect when an incremental approach may
/// not be feasible".
#[test]
fn ess_detects_infeasible_translation() {
    let p = |h: &mut dyn Handler| {
        let x = h.sample(addr!["x"], Dist::normal(0.0, 1.0))?;
        h.observe(
            addr!["o"],
            Dist::normal(x.as_real()?, 1.0),
            Value::Real(0.0),
        )?;
        Ok(x)
    };
    // Q observes a wildly different value with a tight likelihood.
    let q = |h: &mut dyn Handler| {
        let x = h.sample(addr!["x"], Dist::normal(0.0, 1.0))?;
        h.observe(
            addr!["o"],
            Dist::normal(x.as_real()?, 0.05),
            Value::Real(8.0),
        )?;
        Ok(x)
    };
    let translator = CorrespondenceTranslator::new(p, q, Correspondence::identity_on(["x"]));
    let mut rng = StdRng::seed_from_u64(16);
    // Approximate P posterior by importance-weighted prior samples, then
    // resample to unweighted.
    let weighted = inference::likelihood_weighting(&p, 4_000, &mut rng).unwrap();
    let particles =
        incremental::resample(&weighted, incremental::ResampleScheme::Systematic, &mut rng)
            .unwrap();
    let adapted = infer(
        &translator,
        None,
        &particles,
        &SmcConfig::translate_only(),
        &mut rng,
    )
    .unwrap();
    let ess_fraction = adapted.ess() / adapted.len() as f64;
    assert!(
        ess_fraction < 0.05,
        "expected collapse, got ESS fraction {ess_fraction}"
    );
}
