//! Integration tests of the extended distribution library through the
//! full pipeline: surface syntax, inference kernels, and trace
//! translation.

use incremental::McmcKernel;
use incremental::{Correspondence, CorrespondenceTranslator, TraceTranslator};
use inference::{GaussianDriftKernel, SingleSiteMh};
use ppl::dist::Dist;
use ppl::handlers::simulate;
use ppl::{addr, parse, Handler, PplError, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The new families parse, print, and re-parse.
#[test]
fn new_families_round_trip_through_the_parser() {
    let src = "a = poisson(3.0) @ a;
               b = geometric(0.4) @ b;
               c = beta(2.0, 5.0) @ c;
               d = exponential(1.5) @ d;
               return a + b;";
    let p1 = parse(src).unwrap();
    let p2 = parse(&p1.to_string()).unwrap();
    assert_eq!(p1, p2);
    let mut rng = StdRng::seed_from_u64(1);
    let t = simulate(&p1, &mut rng).unwrap();
    assert_eq!(t.len(), 4);
    let c = t.value(&addr!["c"]).unwrap().as_real().unwrap();
    assert!((0.0..1.0).contains(&c));
}

/// Single-site MH targets a Poisson posterior (checked against a fine
/// truncated-enumeration reference).
#[test]
fn mh_on_poisson_model() {
    // n ~ Poisson(4); observe flip(n >= 4 ? 0.9 : 0.1) == 1.
    let model = |h: &mut dyn Handler| {
        let n = h.sample(addr!["n"], Dist::poisson(4.0))?;
        let po = if n.as_int()? >= 4 { 0.9 } else { 0.1 };
        h.observe(addr!["o"], Dist::flip(po), Value::Bool(true))?;
        Ok(n)
    };
    // Reference by truncation (the tail beyond 40 is negligible).
    let d = Dist::poisson(4.0);
    let mut num = 0.0;
    let mut den = 0.0;
    for k in 0..60_i64 {
        let p = d.log_prob(&Value::Int(k)).prob();
        let like = if k >= 4 { 0.9 } else { 0.1 };
        den += p * like;
        if k >= 4 {
            num += p * like;
        }
    }
    let exact = num / den;
    let kernel = SingleSiteMh::new(model);
    let mut rng = StdRng::seed_from_u64(2);
    let mut trace = simulate(&model, &mut rng).unwrap();
    let (mut hits, total, burn) = (0usize, 120_000usize, 2_000usize);
    for i in 0..total {
        trace = kernel.step(&trace, &mut rng).unwrap();
        if i >= burn && trace.value(&addr!["n"]).unwrap().as_int().unwrap() >= 4 {
            hits += 1;
        }
    }
    let freq = hits as f64 / (total - burn) as f64;
    assert!((freq - exact).abs() < 0.02, "freq {freq} vs exact {exact}");
}

/// A beta latent translates across an edit: the coin bias survives, the
/// weight matches the oracle.
#[test]
fn beta_latent_translates() {
    let p = |h: &mut dyn Handler| {
        let theta = h.sample(addr!["theta"], Dist::beta(2.0, 2.0))?;
        h.observe(addr!["o"], Dist::flip(theta.as_real()?), Value::Bool(true))?;
        Ok(theta)
    };
    let q = |h: &mut dyn Handler| {
        let theta = h.sample(addr!["theta"], Dist::beta(3.0, 1.0))?;
        h.observe(addr!["o"], Dist::flip(theta.as_real()?), Value::Bool(true))?;
        Ok(theta)
    };
    let corr = Correspondence::identity_on(["theta"]);
    let translator = CorrespondenceTranslator::new(p, q, corr.clone());
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..20 {
        let t = simulate(&p, &mut rng).unwrap();
        let out = translator.translate(&t, &mut rng).unwrap();
        assert_eq!(out.trace.value(&addr!["theta"]), t.value(&addr!["theta"]));
        let oracle = incremental::exact_weight_estimate(&p, &q, &corr, &t, &out.trace).unwrap();
        assert!((out.log_weight.log() - oracle.log()).abs() < 1e-9);
        // Weight = Beta(3,1)(θ) / Beta(2,2)(θ) — the observation cancels.
        let theta = t.value(&addr!["theta"]).unwrap().clone();
        let expected = Dist::beta(3.0, 1.0).log_prob(&theta).log()
            - Dist::beta(2.0, 2.0).log_prob(&theta).log();
        assert!((out.log_weight.log() - expected).abs() < 1e-9);
    }
}

/// Drift MH on an exponential-prior model matches the closed-form
/// posterior mean (conjugate via gamma: Exp(1) prior, Exp-likelihood).
#[test]
fn drift_mh_on_exponential_model() {
    // rate ~ Exponential(1); observe one waiting time 0.5 under
    // Exponential(rate): posterior ∝ rate·e^{-rate(1+0.5)} = Gamma(2, 1.5),
    // mean 2/1.5 = 4/3.
    let model = |h: &mut dyn Handler| {
        let rate = h.sample(addr!["rate"], Dist::exponential(1.0))?;
        // `try_` because a drift proposal may push the rate negative; the
        // resulting InvalidDistribution error is a rejection for MH.
        h.observe(
            addr!["o"],
            Dist::try_exponential(rate.as_real()?)?,
            Value::Real(0.5),
        )?;
        Ok(rate)
    };
    let kernel = GaussianDriftKernel::new(model, 0.7);
    let mut rng = StdRng::seed_from_u64(4);
    let mut trace = simulate(&model, &mut rng).unwrap();
    let (mut sum, total, burn) = (0.0, 80_000usize, 2_000usize);
    for i in 0..total {
        trace = kernel.step(&trace, &mut rng).unwrap();
        if i >= burn {
            sum += trace.value(&addr!["rate"]).unwrap().as_real().unwrap();
        }
    }
    let mean = sum / (total - burn) as f64;
    assert!((mean - 4.0 / 3.0).abs() < 0.03, "posterior mean {mean}");
}

/// The geometric distribution's infinite support is handled: reuse works
/// (same support), enumeration refuses, Gibbs skips.
#[test]
fn geometric_support_discipline() {
    assert!(Dist::geometric(0.5).same_support(&Dist::geometric(0.2)));
    assert!(Dist::geometric(0.5).same_support(&Dist::poisson(3.0)));
    assert!(!Dist::geometric(0.5).same_support(&Dist::uniform_int(0, 10)));
    assert!(Dist::geometric(0.5).is_discrete());
    assert!(Dist::geometric(0.5).enumerate_support().is_none());

    let model = |h: &mut dyn Handler| h.sample(addr!["g"], Dist::geometric(0.5));
    assert!(matches!(
        ppl::Enumeration::run(&model),
        Err(PplError::NonEnumerable(_))
    ));

    // Translation across a geometric-rate edit reuses the count.
    let p = |h: &mut dyn Handler| h.sample(addr!["g"], Dist::geometric(0.5));
    let q = |h: &mut dyn Handler| h.sample(addr!["g"], Dist::geometric(0.25));
    let translator = CorrespondenceTranslator::new(p, q, Correspondence::identity_on(["g"]));
    let mut rng = StdRng::seed_from_u64(5);
    let t = simulate(&p, &mut rng).unwrap();
    let out = translator.translate(&t, &mut rng).unwrap();
    assert_eq!(out.trace.value(&addr!["g"]), t.value(&addr!["g"]));
    let k = t.value(&addr!["g"]).unwrap().clone();
    let expected =
        Dist::geometric(0.25).log_prob(&k).log() - Dist::geometric(0.5).log_prob(&k).log();
    assert!((out.log_weight.log() - expected).abs() < 1e-9);
}

/// The static checker understands the new families.
#[test]
fn checker_covers_new_families() {
    let ok = parse("x = poisson(2.0); y = beta(1.0, 1.0); return x + y;").unwrap();
    assert!(ppl::check::check(&ok).is_empty());
    let bad = parse("a = array(2, 0); x = poisson(a); return x;").unwrap();
    assert!(!ppl::check::is_clean(&bad));
}
