//! Fault-injection integration tests for the fault-tolerant SMC runtime.
//!
//! A three-stage SMC sequence is driven through [`FaultyTranslator`]s
//! injecting all three failure modes — a worker panic, a NaN weight, and
//! a structured translation error — and each [`FailurePolicy`] is checked
//! against its contract: fail-fast surfaces a typed error, drop-and-
//! renormalize completes on the survivors and reports the quarantine, and
//! retry recovers deterministically with reseeded per-attempt RNGs.

use incremental::{
    infer, run_sequence, run_sequence_with_policy, Correspondence, CorrespondenceTranslator,
    FailureKind, FailurePolicy, FaultKind, FaultPlan, FaultSpec, FaultyTranslator,
    ParticleCollection, SmcConfig, SmcError, Stage,
};
use ppl::dist::Dist;
use ppl::handlers::simulate;
use ppl::{addr, Handler, PplError, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N_PARTICLES: usize = 400;

fn model_with_obs(p_obs_true: f64) -> impl Fn(&mut dyn Handler) -> Result<Value, PplError> {
    move |h: &mut dyn Handler| {
        let x = h.sample(addr!["x"], Dist::flip(0.5))?;
        let po = if x.truthy()? {
            p_obs_true
        } else {
            1.0 - p_obs_true
        };
        h.observe(addr!["o"], Dist::flip(po), Value::Bool(true))?;
        Ok(x)
    }
}

/// Three translators for the edit history 0.5 → 0.6 → 0.8 → 0.9.
#[allow(clippy::type_complexity)]
fn translator_chain() -> Vec<
    CorrespondenceTranslator<
        impl Fn(&mut dyn Handler) -> Result<Value, PplError>,
        impl Fn(&mut dyn Handler) -> Result<Value, PplError>,
    >,
> {
    [(0.5, 0.6), (0.6, 0.8), (0.8, 0.9)]
        .into_iter()
        .map(|(p_from, p_to)| {
            CorrespondenceTranslator::new(
                model_with_obs(p_from),
                model_with_obs(p_to),
                Correspondence::identity_on(["x"]),
            )
        })
        .collect()
}

/// Posterior samples of the first-stage source model. Its observation is
/// uninformative (flip(0.5)), so prior simulations are posterior samples.
fn initial_particles(seed: u64) -> ParticleCollection {
    let m0 = model_with_obs(0.5);
    let mut rng = StdRng::seed_from_u64(seed);
    ParticleCollection::from_traces((0..N_PARTICLES).map(|_| simulate(&m0, &mut rng).unwrap()))
}

/// All three failure modes across a multi-step sequence: a panic at stage
/// 0, a NaN weight at stage 1, and a translation error at stage 2.
fn all_modes_plan(fail_attempts: fn(usize, usize, FaultKind) -> FaultSpec) -> FaultPlan {
    FaultPlan::new()
        .with(fail_attempts(0, 7, FaultKind::Panic))
        .with(fail_attempts(1, 3, FaultKind::NanWeight))
        .with(fail_attempts(2, 11, FaultKind::Error))
}

fn faulty_stages<'a>(
    chain: &'a [impl incremental::TraceTranslator],
    plan: &FaultPlan,
) -> Vec<FaultyTranslator<&'a dyn incremental::TraceTranslator>> {
    chain
        .iter()
        .map(|t| FaultyTranslator::new(t as &dyn incremental::TraceTranslator, plan.clone()))
        .collect()
}

fn stages<'a>(translators: &'a [impl incremental::TraceTranslator]) -> Vec<Stage<'a>> {
    translators
        .iter()
        .map(|translator| Stage {
            translator,
            mcmc: None,
        })
        .collect()
}

fn posterior_true(c: &ParticleCollection) -> f64 {
    c.probability(|t| t.value(&addr!["x"]).unwrap().truthy().unwrap())
        .unwrap()
}

#[test]
fn fail_fast_surfaces_the_first_fault_as_a_typed_error() {
    let chain = translator_chain();
    let wrapped = faulty_stages(&chain, &all_modes_plan(FaultSpec::always));
    let err = run_sequence_with_policy(
        &stages(&wrapped),
        &initial_particles(1),
        &SmcConfig::translate_only(),
        &FailurePolicy::FailFast,
        &mut StdRng::seed_from_u64(1),
    )
    .unwrap_err();
    // The first planned fault is the stage-0 panic: the run dies there
    // with a structured record, not an unwinding panic.
    match err {
        SmcError::Particle(f) => {
            assert_eq!(f.step, 0);
            assert_eq!(f.particle, 7);
            assert_eq!(f.attempts, 1);
            assert!(
                matches!(f.kind, FailureKind::Panic(ref msg)
                             if msg.contains("injected panic: step 0 particle 7")),
                "{f}"
            );
        }
        other => panic!("expected SmcError::Particle, got {other}"),
    }
}

#[test]
fn drop_and_renormalize_quarantines_all_three_modes() {
    let chain = translator_chain();
    let wrapped = faulty_stages(&chain, &all_modes_plan(FaultSpec::always));
    let run = run_sequence_with_policy(
        &stages(&wrapped),
        &initial_particles(2),
        &SmcConfig::translate_only(),
        &FailurePolicy::DropAndRenormalize { max_loss: 0.05 },
        &mut StdRng::seed_from_u64(2),
    )
    .unwrap();

    // Each stage drops exactly its one faulted particle and records the
    // failure mode in its report.
    assert!(!run.is_clean());
    let expect = [(7, "panic"), (3, "non-finite"), (11, "error")];
    for (step, (particle, _)) in expect.iter().enumerate() {
        let report = &run.reports[step];
        assert_eq!(report.step, step);
        assert_eq!(report.dropped, 1, "stage {step}: {report}");
        assert_eq!(report.retries, 0);
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].particle, *particle);
        assert_eq!(report.input_particles, N_PARTICLES - step);
        assert_eq!(report.output_particles, N_PARTICLES - step - 1);
    }
    assert!(matches!(
        run.reports[0].failures[0].kind,
        FailureKind::Panic(_)
    ));
    assert!(matches!(
        run.reports[1].failures[0].kind,
        FailureKind::NonFiniteWeight(w) if w.is_nan()
    ));
    assert!(matches!(
        run.reports[2].failures[0].kind,
        FailureKind::Error(_)
    ));

    // The survivors still form a properly-weighted collection: the
    // estimator self-normalizes over them and tracks the final posterior
    // (exact for the 0.9 model: 0.9).
    assert_eq!(run.last().len(), N_PARTICLES - 3);
    let estimate = posterior_true(run.last());
    assert!((estimate - 0.9).abs() < 0.06, "estimate {estimate}");
}

#[test]
fn drop_policy_rejects_runs_exceeding_the_loss_bound() {
    let chain = translator_chain();
    // Fault 3 of 400 particles at stage 0 with a 0.5% loss budget (2 max).
    let plan = FaultPlan::new()
        .with(FaultSpec::always(0, 1, FaultKind::Error))
        .with(FaultSpec::always(0, 2, FaultKind::Error))
        .with(FaultSpec::always(0, 3, FaultKind::Error));
    let wrapped = faulty_stages(&chain, &plan);
    let err = run_sequence_with_policy(
        &stages(&wrapped),
        &initial_particles(3),
        &SmcConfig::translate_only(),
        &FailurePolicy::DropAndRenormalize { max_loss: 0.005 },
        &mut StdRng::seed_from_u64(3),
    )
    .unwrap_err();
    match err {
        SmcError::TooManyDropped {
            step,
            dropped,
            total,
            failures,
            ..
        } => {
            assert_eq!(step, 0);
            assert_eq!(dropped, 3);
            assert_eq!(total, N_PARTICLES);
            assert_eq!(failures.len(), 3);
        }
        other => panic!("expected SmcError::TooManyDropped, got {other}"),
    }
}

#[test]
fn retry_recovers_transient_faults_deterministically() {
    let chain = translator_chain();
    // Each fault clears after the first attempt, so one reseeded retry
    // recovers every particle.
    let wrapped = faulty_stages(&chain, &all_modes_plan(FaultSpec::once));
    let policy = FailurePolicy::Retry {
        max_attempts: 3,
        seed: 17,
    };
    let run_once = |seed: u64| {
        run_sequence_with_policy(
            &stages(&wrapped),
            &initial_particles(seed),
            &SmcConfig::translate_only(),
            &policy,
            &mut StdRng::seed_from_u64(seed),
        )
        .unwrap()
    };
    let run = run_once(4);

    // No particle is lost; each stage records exactly one recovery.
    for (step, report) in run.reports.iter().enumerate() {
        assert_eq!(report.dropped, 0, "stage {step}: {report}");
        assert_eq!(report.retries, 1);
        assert_eq!(report.recovered, 1);
        assert!(report.failures.is_empty());
        assert_eq!(report.output_particles, N_PARTICLES);
    }
    let estimate = posterior_true(run.last());
    assert!((estimate - 0.9).abs() < 0.06, "estimate {estimate}");

    // Retry RNGs are derived from (policy seed, step, particle, attempt),
    // not from the shared stream, so a rerun is bit-identical.
    let rerun = run_once(4);
    let bits = |r: &incremental::SequenceRun| -> Vec<u64> {
        r.last()
            .iter()
            .map(|p| p.log_weight.log().to_bits())
            .collect()
    };
    assert_eq!(bits(&run), bits(&rerun));
    assert_eq!(
        posterior_true(run.last()).to_bits(),
        posterior_true(rerun.last()).to_bits()
    );
}

#[test]
fn retry_exhaustion_is_a_typed_error() {
    let chain = translator_chain();
    // A permanent fault outlives any retry budget.
    let plan = FaultPlan::new().with(FaultSpec::always(1, 5, FaultKind::Error));
    let wrapped = faulty_stages(&chain, &plan);
    let err = run_sequence_with_policy(
        &stages(&wrapped),
        &initial_particles(5),
        &SmcConfig::translate_only(),
        &FailurePolicy::Retry {
            max_attempts: 4,
            seed: 0,
        },
        &mut StdRng::seed_from_u64(5),
    )
    .unwrap_err();
    match err {
        SmcError::Particle(f) => {
            assert_eq!((f.step, f.particle, f.attempts), (1, 5, 4));
        }
        other => panic!("expected SmcError::Particle, got {other}"),
    }
}

/// The robustness machinery must be invisible on clean runs: the policy
/// path (even wrapped in a no-fault `FaultyTranslator`) reproduces the
/// legacy `infer`/`run_sequence` results bit for bit.
#[test]
fn clean_runs_are_bit_identical_to_the_legacy_path() {
    let chain = translator_chain();

    // Legacy sequence run.
    let legacy = run_sequence(
        &stages(&chain),
        &initial_particles(6),
        &SmcConfig::translate_only(),
        &mut StdRng::seed_from_u64(6),
    )
    .unwrap();

    // Policy path with an empty fault plan and a tolerant policy.
    let wrapped = faulty_stages(&chain, &FaultPlan::new());
    let policy_run = run_sequence_with_policy(
        &stages(&wrapped),
        &initial_particles(6),
        &SmcConfig::translate_only(),
        &FailurePolicy::DropAndRenormalize { max_loss: 0.5 },
        &mut StdRng::seed_from_u64(6),
    )
    .unwrap();

    assert!(legacy.is_clean());
    assert!(policy_run.is_clean());
    for (a, b) in legacy.collections.iter().zip(&policy_run.collections) {
        assert_eq!(a.len(), b.len());
        for (pa, pb) in a.iter().zip(b.iter()) {
            assert_eq!(pa.log_weight.log().to_bits(), pb.log_weight.log().to_bits());
        }
    }
    assert_eq!(
        posterior_true(legacy.last()).to_bits(),
        posterior_true(policy_run.last()).to_bits()
    );

    // Single-step `infer` agrees with the first sequence stage too.
    let one = infer(
        &chain[0],
        None,
        &initial_particles(6),
        &SmcConfig::translate_only(),
        &mut StdRng::seed_from_u64(6),
    )
    .unwrap();
    assert_eq!(
        posterior_true(&one).to_bits(),
        posterior_true(&legacy.collections[0]).to_bits()
    );
}
