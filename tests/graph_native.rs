//! Differential tests for graph-native particle SMC.
//!
//! The graph-native edit-sequence runner ([`run_edit_sequence_graph`] and
//! its pooled variant) must be *bit-identical* to the flat-trace
//! reference ([`run_edit_sequence`]) whenever the edits reuse every
//! random choice: the representation (traces vs. persistent execution
//! graphs) and the threading (serial vs. worker pool) are implementation
//! details that may never change the weights. These tests pin that
//! contract down across failure policies, resampling schemes, thread
//! counts, and fault injection with quarantine and retry.

use std::sync::Arc;

use depgraph::{
    edit_chain, edit_chain_shared, lift_collection, run_edit_sequence, run_edit_sequence_graph,
    run_edit_sequence_parallel_with_policy, ExecGraph,
};
use incremental::{
    run_sequence_with_policy, run_state_sequence_with_policy, FailurePolicy, FaultKind, FaultPlan,
    FaultSpec, FaultyTranslator, ParticleCollection, ResamplePolicy, ResampleScheme, SequenceRun,
    SmcConfig, Stage, StateTranslator,
};
use ppl::ast::Program;
use ppl::handlers::simulate;
use ppl::parse;
use rand::rngs::StdRng;
use rand::SeedableRng;

const PARTICLES: usize = 300;

/// A loop-structured edit history: whole-chain observation-strength
/// edits over a small latent chain, so translation exercises indexed
/// (per-iteration) addresses. Stage 0 is uninformative, so prior
/// simulations are posterior samples of it.
fn programs() -> Vec<Program> {
    [0.5_f64, 0.6, 0.8, 0.9]
        .iter()
        .map(|hi| {
            let lo = 1.0 - hi;
            parse(&format!(
                "n = 4; prev = 1;\n\
                 for i in [0..n) {{\n\
                   x = flip(prev ? 0.7 : 0.3) @ x;\n\
                   observe(flip(x ? {hi} : {lo}) @ o == 1);\n\
                   prev = x;\n\
                 }}\n\
                 return prev;"
            ))
            .expect("chain program parses")
        })
        .collect()
}

fn initial(ps: &[Program]) -> ParticleCollection {
    let mut rng = StdRng::seed_from_u64(11);
    let traces: Vec<_> = (0..PARTICLES)
        .map(|_| simulate(&ps[0], &mut rng).expect("prior simulation"))
        .collect();
    ParticleCollection::from_traces(traces)
}

/// Asserts two flat sequence runs are bit-identical: same per-stage log
/// weights (to the bit), same choice maps, same health reports.
fn assert_bit_identical(reference: &SequenceRun, candidate: &SequenceRun, context: &str) {
    assert_eq!(
        reference.collections.len(),
        candidate.collections.len(),
        "{context}: stage count"
    );
    for (stage, (a, b)) in reference
        .collections
        .iter()
        .zip(&candidate.collections)
        .enumerate()
    {
        assert_eq!(a.len(), b.len(), "{context}: stage {stage} size");
        for (j, (pa, pb)) in a.iter().zip(b.iter()).enumerate() {
            assert_eq!(
                pa.log_weight.log().to_bits(),
                pb.log_weight.log().to_bits(),
                "{context}: stage {stage} particle {j} weight"
            );
            assert_eq!(
                pa.trace.to_choice_map(),
                pb.trace.to_choice_map(),
                "{context}: stage {stage} particle {j} choices"
            );
        }
    }
    for (a, b) in reference.reports.iter().zip(&candidate.reports) {
        assert_eq!(a.ess.to_bits(), b.ess.to_bits(), "{context}: report ess");
        assert_eq!(a.dropped, b.dropped, "{context}: report dropped");
        assert_eq!(a.retries, b.retries, "{context}: report retries");
        assert_eq!(a.recovered, b.recovered, "{context}: report recovered");
    }
}

#[test]
fn graph_native_matches_flat_across_failure_policies() {
    let ps = programs();
    let init = initial(&ps);
    let config = SmcConfig::translate_only();
    for policy in [
        FailurePolicy::FailFast,
        FailurePolicy::DropAndRenormalize { max_loss: 1.0 },
        FailurePolicy::Retry {
            max_attempts: 3,
            seed: 5,
        },
    ] {
        let mut rng_flat = StdRng::seed_from_u64(41);
        let flat = run_edit_sequence(&ps, &init, &config, &policy, &mut rng_flat).unwrap();
        let mut rng_graph = StdRng::seed_from_u64(41);
        let graph = run_edit_sequence_graph(&ps, &init, &config, &policy, &mut rng_graph)
            .unwrap()
            .flatten()
            .unwrap();
        assert_bit_identical(&flat, &graph, &format!("{policy:?}"));
    }
}

#[test]
fn graph_native_matches_flat_across_resampling_schemes() {
    let ps = programs();
    let init = initial(&ps);
    for scheme in [
        ResampleScheme::Multinomial,
        ResampleScheme::Systematic,
        ResampleScheme::Stratified,
        ResampleScheme::Residual,
    ] {
        let config = SmcConfig {
            resample: ResamplePolicy::Always,
            scheme,
            ..SmcConfig::translate_only()
        };
        let mut rng_flat = StdRng::seed_from_u64(43);
        let flat = run_edit_sequence(&ps, &init, &config, &FailurePolicy::FailFast, &mut rng_flat)
            .unwrap();
        let mut rng_graph = StdRng::seed_from_u64(43);
        let graph = run_edit_sequence_graph(
            &ps,
            &init,
            &config,
            &FailurePolicy::FailFast,
            &mut rng_graph,
        )
        .unwrap()
        .flatten()
        .unwrap();
        assert_bit_identical(&flat, &graph, &format!("{scheme:?}"));
    }
}

#[test]
fn pooled_runs_are_thread_count_invariant() {
    let ps = programs();
    let init = initial(&ps);
    let config = SmcConfig::translate_only();
    for policy in [
        FailurePolicy::FailFast,
        FailurePolicy::Retry {
            max_attempts: 2,
            seed: 7,
        },
    ] {
        let run_with = |threads: usize| {
            let mut rng = StdRng::seed_from_u64(47);
            run_edit_sequence_parallel_with_policy(
                &ps, &init, &config, &policy, 909, threads, &mut rng,
            )
            .unwrap()
            .flatten()
            .unwrap()
        };
        let reference = run_with(1);
        for threads in [3, 8] {
            let candidate = run_with(threads);
            assert_bit_identical(
                &reference,
                &candidate,
                &format!("{policy:?} threads={threads}"),
            );
        }
    }
}

/// Injects the same fault plan into the flat reference and the
/// graph-native runner; both must quarantine the same particles and
/// produce bit-identical survivors.
#[test]
fn fault_quarantine_is_identical_in_flat_and_graph_runs() {
    let ps = programs();
    let init = initial(&ps);
    let config = SmcConfig::translate_only();
    let policy = FailurePolicy::DropAndRenormalize { max_loss: 0.5 };
    let plan = FaultPlan::new()
        .with(FaultSpec::always(1, 3, FaultKind::Error))
        .with(FaultSpec::always(2, 7, FaultKind::NanWeight));

    let flat_chain = edit_chain(&ps);
    let flat_faulty: Vec<_> = flat_chain
        .into_iter()
        .map(|t| FaultyTranslator::new(t, plan.clone()))
        .collect();
    let stages: Vec<Stage<'_>> = flat_faulty
        .iter()
        .map(|translator| Stage {
            translator,
            mcmc: None,
        })
        .collect();
    let mut rng_flat = StdRng::seed_from_u64(53);
    let flat = run_sequence_with_policy(&stages, &init, &config, &policy, &mut rng_flat).unwrap();

    let shared: Vec<Arc<Program>> = ps.iter().cloned().map(Arc::new).collect();
    let graph_faulty: Vec<_> = edit_chain_shared(&shared)
        .into_iter()
        .map(|t| FaultyTranslator::new(t, plan.clone()))
        .collect();
    let graph_stages: Vec<&dyn StateTranslator<Arc<ExecGraph>>> = graph_faulty
        .iter()
        .map(|t| t as &dyn StateTranslator<Arc<ExecGraph>>)
        .collect();
    let lifted = lift_collection(&shared[0], &init).unwrap();
    let mut rng_graph = StdRng::seed_from_u64(53);
    let graph =
        run_state_sequence_with_policy(&graph_stages, &lifted, &config, &policy, &mut rng_graph)
            .unwrap()
            .flatten()
            .unwrap();

    assert_eq!(flat.reports[1].dropped, 1);
    assert_eq!(flat.reports[2].dropped, 1);
    let flat_failed: Vec<_> = flat.reports[1]
        .failures
        .iter()
        .map(|f| f.particle)
        .collect();
    let graph_failed: Vec<_> = graph.reports[1]
        .failures
        .iter()
        .map(|f| f.particle)
        .collect();
    assert_eq!(flat_failed, vec![3]);
    assert_eq!(flat_failed, graph_failed);
    assert_bit_identical(&flat, &graph, "quarantine");
}

/// A transient panic cleared by one retry: both runners must recover the
/// same particle deterministically and agree bit-for-bit.
#[test]
fn fault_retry_recovers_identically_in_flat_and_graph_runs() {
    let ps = programs();
    let init = initial(&ps);
    let config = SmcConfig::translate_only();
    let policy = FailurePolicy::Retry {
        max_attempts: 2,
        seed: 9,
    };
    let plan = FaultPlan::new().with(FaultSpec::once(1, 4, FaultKind::Panic));

    let flat_faulty: Vec<_> = edit_chain(&ps)
        .into_iter()
        .map(|t| FaultyTranslator::new(t, plan.clone()))
        .collect();
    let stages: Vec<Stage<'_>> = flat_faulty
        .iter()
        .map(|translator| Stage {
            translator,
            mcmc: None,
        })
        .collect();
    let mut rng_flat = StdRng::seed_from_u64(59);
    let flat = run_sequence_with_policy(&stages, &init, &config, &policy, &mut rng_flat).unwrap();

    let shared: Vec<Arc<Program>> = ps.iter().cloned().map(Arc::new).collect();
    let graph_faulty: Vec<_> = edit_chain_shared(&shared)
        .into_iter()
        .map(|t| FaultyTranslator::new(t, plan.clone()))
        .collect();
    let graph_stages: Vec<&dyn StateTranslator<Arc<ExecGraph>>> = graph_faulty
        .iter()
        .map(|t| t as &dyn StateTranslator<Arc<ExecGraph>>)
        .collect();
    let lifted = lift_collection(&shared[0], &init).unwrap();
    let mut rng_graph = StdRng::seed_from_u64(59);
    let graph =
        run_state_sequence_with_policy(&graph_stages, &lifted, &config, &policy, &mut rng_graph)
            .unwrap()
            .flatten()
            .unwrap();

    assert_eq!(flat.reports[1].recovered, 1);
    assert_eq!(flat.reports[1].retries, 1);
    assert_eq!(flat.reports[1].dropped, 0);
    assert_bit_identical(&flat, &graph, "retry");
}
