//! Determinism contract for the metrics layer.
//!
//! The deterministic counter subset ([`MetricsReport::counters_json`]) —
//! propagation counters and stage health tallies, no wall times, no pool
//! telemetry — must be *bit-identical* across worker-thread counts for a
//! fixed seed, on both the flat-trace interop runner and the graph-native
//! runner. Counters are drained at stage boundaries (barriers), and
//! per-stage totals are sums of per-particle contributions, so the
//! schedule may never leak into the numbers.

use std::sync::Arc;

use depgraph::{edit_chain, run_edit_sequence_parallel_with_policy};
use incremental::{
    metrics, run_sequence_parallel_with_policy, FailurePolicy, MetricsRecorder, ParallelStage,
    ParticleCollection, SmcConfig,
};
use ppl::ast::Program;
use ppl::handlers::simulate;
use ppl::parse;
use rand::rngs::StdRng;
use rand::SeedableRng;

const PARTICLES: usize = 120;
const SEED: u64 = 0xD5EED;
const THREADS: [usize; 3] = [1, 3, 8];

/// A loop-structured edit history (observation-strength edits over a
/// latent chain), so propagation exercises loop records, per-iteration
/// skips, choice reuse, and observation rescoring.
fn programs() -> Vec<Program> {
    [0.5_f64, 0.6, 0.8, 0.9]
        .iter()
        .map(|hi| {
            let lo = 1.0 - hi;
            parse(&format!(
                "n = 5; prev = 1;\n\
                 for i in [0..n) {{\n\
                   x = flip(prev ? 0.7 : 0.3) @ x;\n\
                   observe(flip(x ? {hi} : {lo}) @ o == 1);\n\
                   prev = x;\n\
                 }}\n\
                 return prev;"
            ))
            .expect("chain program parses")
        })
        .collect()
}

fn initial(ps: &[Program]) -> ParticleCollection {
    let mut rng = StdRng::seed_from_u64(11);
    let traces: Vec<_> = (0..PARTICLES)
        .map(|_| simulate(&ps[0], &mut rng).expect("prior simulation"))
        .collect();
    ParticleCollection::from_traces(traces)
}

/// Runs the graph-native pooled runner under a recorder and returns the
/// deterministic counter document.
fn graph_counters(threads: usize) -> String {
    let programs = programs();
    let initial = initial(&programs);
    let recorder = Arc::new(MetricsRecorder::new());
    let _guard = metrics::install(Arc::clone(&recorder) as _);
    let mut rng = StdRng::seed_from_u64(7);
    run_edit_sequence_parallel_with_policy(
        &programs,
        &initial,
        &SmcConfig::translate_only(),
        &FailurePolicy::FailFast,
        SEED,
        threads,
        &mut rng,
    )
    .expect("graph-native run");
    recorder.report("graph").counters_json()
}

/// Runs the flat-trace interop path (per-stage graph rebuild) under a
/// recorder and returns the deterministic counter document.
fn flat_counters(threads: usize) -> String {
    let programs = programs();
    let initial = initial(&programs);
    let chain = edit_chain(&programs);
    let stages: Vec<ParallelStage<'_>> = chain
        .iter()
        .map(|t| ParallelStage {
            translator: t,
            mcmc: None,
        })
        .collect();
    let recorder = Arc::new(MetricsRecorder::new());
    let _guard = metrics::install(Arc::clone(&recorder) as _);
    let mut rng = StdRng::seed_from_u64(7);
    run_sequence_parallel_with_policy(
        &stages,
        &initial,
        &SmcConfig::translate_only(),
        &FailurePolicy::FailFast,
        SEED,
        threads,
        &mut rng,
    )
    .expect("flat run");
    recorder.report("flat").counters_json()
}

#[test]
fn graph_native_counters_are_identical_across_thread_counts() {
    let reference = graph_counters(THREADS[0]);
    assert!(reference.contains("\"schema\": \"metrics/v1-counters\""));
    assert!(!reference.contains("\"nodes_visited\": 0,"), "{reference}");
    for &threads in &THREADS[1..] {
        assert_eq!(
            reference,
            graph_counters(threads),
            "graph-native counters diverged at {threads} threads"
        );
    }
}

#[test]
fn flat_counters_are_identical_across_thread_counts() {
    let reference = flat_counters(THREADS[0]);
    assert!(reference.contains("\"schema\": \"metrics/v1-counters\""));
    for &threads in &THREADS[1..] {
        assert_eq!(
            reference,
            flat_counters(threads),
            "flat counters diverged at {threads} threads"
        );
    }
}

#[test]
fn propagation_totals_reflect_the_chain_workload() {
    let programs = programs();
    let initial = initial(&programs);
    let recorder = Arc::new(MetricsRecorder::new());
    let _guard = metrics::install(Arc::clone(&recorder) as _);
    let mut rng = StdRng::seed_from_u64(7);
    run_edit_sequence_parallel_with_policy(
        &programs,
        &initial,
        &SmcConfig::translate_only(),
        &FailurePolicy::FailFast,
        SEED,
        2,
        &mut rng,
    )
    .expect("graph-native run");
    let report = recorder.report("totals");
    assert_eq!(report.stages.len(), programs.len() - 1);
    let totals = report.total_propagation();
    // Every stage edits every observation's density: each observation is
    // rescored, nothing is sampled fresh, and the unchanged sample
    // statements are reused via record-level *skips* (`iter_skips` stays
    // zero because each iteration's observe is dirty), not via
    // re-executed draws — so `choices_reused` stays zero here too.
    assert!(totals.nodes_visited > 0);
    assert!(totals.nodes_skipped > 0);
    assert_eq!(totals.choices_fresh, 0);
    assert_eq!(totals.choices_reused, 0);
    assert_eq!(
        totals.observes_rescored,
        (programs.len() - 1) as u64 * PARTICLES as u64 * 5
    );
}

#[test]
fn prior_edit_counts_reused_choices() {
    // Editing a sample statement's *distribution* forces it to be
    // re-executed; the draw then reuses the old value through the
    // correspondence, which is exactly what `choices_reused` counts.
    let programs: Vec<Program> = ["0.3", "0.4"]
        .iter()
        .map(|p| {
            parse(&format!(
                "x = flip({p}) @ x; observe(flip(x ? 0.9 : 0.1) @ o == 1); return x;"
            ))
            .expect("coin program parses")
        })
        .collect();
    let initial = initial(&programs);
    let recorder = Arc::new(MetricsRecorder::new());
    let _guard = metrics::install(Arc::clone(&recorder) as _);
    let mut rng = StdRng::seed_from_u64(7);
    run_edit_sequence_parallel_with_policy(
        &programs,
        &initial,
        &SmcConfig::translate_only(),
        &FailurePolicy::FailFast,
        SEED,
        2,
        &mut rng,
    )
    .expect("graph-native run");
    let totals = recorder.report("prior-edit").total_propagation();
    assert_eq!(totals.choices_reused, PARTICLES as u64);
    assert_eq!(totals.choices_fresh, 0);
    // The observation statement itself is unchanged, so it is skipped
    // wholesale — rescoring only counts re-executed observes.
    assert_eq!(totals.observes_rescored, 0);
}
