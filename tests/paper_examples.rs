//! Integration tests pinning every worked example in the paper's text.

use incremental::{CorrespondenceTranslator, TraceTranslator};
use models::{burglary, worked_examples};
use ppl::dist::Dist;
use ppl::{addr, Enumeration, Trace, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn burgled(t: &Trace) -> bool {
    t.return_value().unwrap().truthy().unwrap()
}

/// Figure 1 bar charts: prior 98%/2% both; posteriors 79.5%/20.5% and
/// 80.6%/19.4%.
#[test]
fn figure1_bars() {
    let e_p = Enumeration::run(&burglary::original).unwrap();
    assert!((e_p.prior_probability(burgled) - 0.02).abs() < 1e-12);
    assert!((e_p.probability(burgled) - 0.205).abs() < 5e-4);
    let e_q = Enumeration::run(&burglary::refined).unwrap();
    assert!((e_q.prior_probability(burgled) - 0.02).abs() < 1e-12);
    assert!((e_q.probability(burgled) - 0.194).abs() < 5e-4);
}

/// Figure 1 worked weight: w' = (p_α' p_β' p_o') / (p_α p_β p_o) ≈ 1.19.
#[test]
fn figure1_weight() {
    let mut t = Trace::new();
    for (name, p) in [("alpha", 0.02), ("beta", 0.9)] {
        let d = Dist::flip(p);
        let lp = d.log_prob(&Value::Bool(true));
        t.record_choice(addr![name], Value::Bool(true), d, lp)
            .unwrap();
    }
    let d = Dist::flip(0.8);
    let lp = d.log_prob(&Value::Bool(true));
    t.record_observation(addr!["o"], Value::Bool(true), d, lp)
        .unwrap();

    let translator = CorrespondenceTranslator::new(
        burglary::original,
        burglary::refined,
        burglary::correspondence(),
    );
    let mut rng = StdRng::seed_from_u64(0);
    let expected = (0.02 * 0.95 * 0.9) / (0.02 * 0.9 * 0.8); // = 1.1875
    let mut seen = false;
    for _ in 0..50_000 {
        let out = translator.translate(&t, &mut rng).unwrap();
        if out.trace.value(&addr!["gamma_"]).unwrap().truthy().unwrap() {
            assert!((out.log_weight.prob() - expected).abs() < 1e-9);
            seen = true;
            break;
        }
    }
    assert!(seen, "earthquake branch never sampled");
}

/// Example 1 (Figure 3): Z_P = 0.7 and the normalized trace probability.
#[test]
fn example1_z_and_trace_probability() {
    let program = worked_examples::fig3_program();
    let e = Enumeration::run(&program).unwrap();
    assert!((e.z() - 0.7).abs() < 1e-12);
    let target = (1.0 / 3.0) * (1.0 / 6.0) * 0.5 * 0.2 / 0.7;
    let prob = e.probability(|t| {
        t.value(&addr!["b"]).unwrap().num_eq(&Value::Bool(true))
            && t.value(&addr!["c"]).unwrap().num_eq(&Value::Int(4))
            && t.value(&addr!["d"]).unwrap().num_eq(&Value::Bool(true))
    });
    assert!((prob - target).abs() < 1e-12);
}

/// Example 3 (Figure 5): ŵ = 2/3 for t = [α↦1, γ↦1, δ↦1].
#[test]
fn example3_weight_two_thirds() {
    let mut t = Trace::new();
    let d = Dist::flip(0.5);
    for name in ["alpha", "gamma", "delta"] {
        let lp = d.log_prob(&Value::Bool(true));
        t.record_choice(addr![name], Value::Bool(true), d.clone(), lp)
            .unwrap();
    }
    let translator = CorrespondenceTranslator::new(
        worked_examples::fig5_p,
        worked_examples::fig5_q,
        worked_examples::fig5_correspondence(),
    );
    let mut rng = StdRng::seed_from_u64(1);
    for _ in 0..20 {
        let out = translator.translate(&t, &mut rng).unwrap();
        // The weight is 2/3 regardless of how θ and ι are sampled.
        assert!((out.log_weight.prob() - 2.0 / 3.0).abs() < 1e-12);
        // θ and ι were sampled fresh within their supports.
        let theta = out.trace.value(&addr!["theta"]).unwrap().as_int().unwrap();
        let iota = out.trace.value(&addr!["iota"]).unwrap().as_int().unwrap();
        assert!((1..=6).contains(&theta));
        assert!((-5..=-2).contains(&iota));
    }
}

/// Example 3's footnote: δ and θ must NOT be matched — their supports
/// differ — and the forward kernel enforces this dynamically.
#[test]
fn example3_support_discipline() {
    assert!(!Dist::flip(0.5).same_support(&Dist::uniform_int(1, 6)));
    assert!(!Dist::uniform_int(0, 5).same_support(&Dist::flip(0.5)));
    // Matching them anyway falls back to fresh sampling (no crash, no
    // corruption): kernel density stays well-defined.
    let f = incremental::Correspondence::from_pairs([
        (addr!["eps"], addr!["alpha"]),
        (addr!["theta"], addr!["delta"]),
    ])
    .unwrap();
    let translator =
        CorrespondenceTranslator::new(worked_examples::fig5_p, worked_examples::fig5_q, f);
    let mut t = Trace::new();
    let d = Dist::flip(0.5);
    for name in ["alpha", "gamma", "delta"] {
        let lp = d.log_prob(&Value::Bool(true));
        t.record_choice(addr![name], Value::Bool(true), d.clone(), lp)
            .unwrap();
    }
    let mut rng = StdRng::seed_from_u64(2);
    let out = translator.translate(&t, &mut rng).unwrap();
    assert!(out.log_weight.log().is_finite());
}

/// Section 5.4: the geometric program's trials are indexed so that
/// changing the success probability reuses the whole trial sequence.
#[test]
fn geometric_loop_correspondence() {
    let p = worked_examples::geometric(0.5);
    let q = worked_examples::geometric(0.25);
    let translator =
        CorrespondenceTranslator::new(p.clone(), q, worked_examples::geometric_correspondence());
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..30 {
        let t = ppl::handlers::simulate(&p, &mut rng).unwrap();
        let out = translator.translate(&t, &mut rng).unwrap();
        assert_eq!(out.trace.return_value(), t.return_value());
        assert_eq!(out.trace.len(), t.len());
    }
}

/// The surface-language versions of the burglary programs agree with the
/// embedded versions, through the parser and the interpreter.
#[test]
fn surface_and_embedded_burglary_agree() {
    let via_ast = Enumeration::run(&burglary::original_program()).unwrap();
    let via_fn = Enumeration::run(&burglary::original).unwrap();
    assert!((via_ast.z() - via_fn.z()).abs() < 1e-12);
    let a = via_ast.probability(burgled);
    let b = via_fn.probability(burgled);
    assert!((a - b).abs() < 1e-12);
}
