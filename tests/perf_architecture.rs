//! Properties of the performance architecture introduced with address
//! interning and the persistent SMC worker pool:
//!
//! 1. the small-vector-backed, internable [`Address`] must be
//!    observationally identical (Display, Eq, Ord, Hash) to the legacy
//!    `Vec<Component>` representation it replaced;
//! 2. interning must round-trip: `a.id().resolve() == a`, and ids are
//!    equal exactly when addresses are;
//! 3. pooled parallel translation must be bit-identical across thread
//!    counts and to the pre-pool scoped-thread reference implementation.

use std::hash::{DefaultHasher, Hash, Hasher};

use incremental::{
    translate_parallel_with_policy, translate_parallel_with_policy_scoped, Correspondence,
    CorrespondenceTranslator, FailurePolicy, ParticleCollection,
};
use ppl::address::Component;
use ppl::dist::Dist;
use ppl::handlers::simulate;
use ppl::{addr, Address, Handler, PplError, Value};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The pre-interning address representation: a component vector with
/// *derived* Eq/Ord/Hash — the exact semantics `Address` must preserve
/// across its inline/heap/interned representations.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum LegacyComponent {
    Sym(String),
    Idx(i64),
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct LegacyAddress(Vec<LegacyComponent>);

impl LegacyAddress {
    fn to_modern(&self) -> Address {
        Address::new(
            self.0
                .iter()
                .map(|c| match c {
                    LegacyComponent::Sym(s) => Component::from(s.as_str()),
                    LegacyComponent::Idx(i) => Component::Idx(*i),
                })
                .collect(),
        )
    }

    /// The legacy Display rendering (slash-joined components).
    fn render(&self) -> String {
        if self.0.is_empty() {
            return "<root>".to_string();
        }
        self.0
            .iter()
            .map(|c| match c {
                LegacyComponent::Sym(s) => s.clone(),
                LegacyComponent::Idx(i) => i.to_string(),
            })
            .collect::<Vec<_>>()
            .join("/")
    }
}

fn legacy_component() -> impl Strategy<Value = LegacyComponent> {
    prop_oneof![
        "[a-z]{1,6}".prop_map(LegacyComponent::Sym),
        (-40i64..40).prop_map(LegacyComponent::Idx),
    ]
}

fn legacy_address() -> impl Strategy<Value = LegacyAddress> {
    // Lengths 0..=5 cross the inline (≤2) / heap (>2) representation
    // boundary in both directions.
    proptest::collection::vec(legacy_component(), 0..6).prop_map(LegacyAddress)
}

fn hash_of<T: Hash>(value: &T) -> u64 {
    let mut hasher = DefaultHasher::new();
    value.hash(&mut hasher);
    hasher.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Display matches the legacy slash-joined rendering for every
    /// representation (inline, heap, and interned resolution).
    #[test]
    fn display_round_trips_against_legacy(legacy in legacy_address()) {
        let modern = legacy.to_modern();
        prop_assert_eq!(modern.to_string(), legacy.render());
        prop_assert_eq!(modern.id().to_string(), legacy.render());
    }

    /// Eq and Ord agree with the derived legacy semantics on arbitrary
    /// address pairs.
    #[test]
    fn eq_and_ord_agree_with_legacy(a in legacy_address(), b in legacy_address()) {
        let (ma, mb) = (a.to_modern(), b.to_modern());
        prop_assert_eq!(ma == mb, a == b);
        prop_assert_eq!(ma.cmp(&mb), a.cmp(&b));
    }

    /// Equal addresses hash identically regardless of how they were
    /// built (bulk construction vs incremental child extension), and the
    /// hash stream matches the legacy derive bit-for-bit.
    #[test]
    fn hash_equality_across_representations(legacy in legacy_address()) {
        let modern = legacy.to_modern();
        // Rebuild incrementally: root → child → child …, which exercises
        // the inline-to-heap spill path.
        let mut grown = Address::root();
        for c in modern.components() {
            grown = grown.child(c.clone());
        }
        prop_assert_eq!(&grown, &modern);
        prop_assert_eq!(hash_of(&grown), hash_of(&modern));
        prop_assert_eq!(hash_of(&modern), hash_of(&legacy));
    }

    /// Interning round-trips: resolving the id yields an equal address,
    /// and two addresses share an id exactly when they are equal.
    #[test]
    fn interning_round_trips(a in legacy_address(), b in legacy_address()) {
        let (ma, mb) = (a.to_modern(), b.to_modern());
        prop_assert_eq!(ma.id().resolve(), &ma);
        prop_assert_eq!(ma.id() == mb.id(), ma == mb);
        // Ids are stable: re-interning returns the same id.
        prop_assert_eq!(ma.id(), ma.id());
    }
}

/// P: a three-site chain with an observation.
fn p_model(h: &mut dyn Handler) -> Result<Value, PplError> {
    let mut prev = Value::Bool(true);
    for i in 0..3 {
        let p = if prev.truthy()? { 0.7 } else { 0.3 };
        prev = h.sample(addr!["state", i], Dist::flip(p))?;
        let po = if prev.truthy()? { 0.8 } else { 0.2 };
        h.observe(addr!["obs", i], Dist::flip(po), Value::Bool(true))?;
    }
    Ok(prev)
}

/// Q: same sites, shifted parameters (every translation reuses all
/// states and reweights).
fn q_model(h: &mut dyn Handler) -> Result<Value, PplError> {
    let mut prev = Value::Bool(true);
    for i in 0..3 {
        let p = if prev.truthy()? { 0.6 } else { 0.4 };
        prev = h.sample(addr!["state", i], Dist::flip(p))?;
        let po = if prev.truthy()? { 0.9 } else { 0.1 };
        h.observe(addr!["obs", i], Dist::flip(po), Value::Bool(true))?;
    }
    Ok(prev)
}

type ModelFn = fn(&mut dyn Handler) -> Result<Value, PplError>;

fn fixture() -> (
    CorrespondenceTranslator<ModelFn, ModelFn>,
    ParticleCollection,
) {
    let translator = CorrespondenceTranslator::new(
        p_model as ModelFn,
        q_model as ModelFn,
        Correspondence::identity_on(["state"]),
    );
    let mut rng = StdRng::seed_from_u64(97);
    let traces: Vec<_> = (0..61)
        .map(|_| simulate(&p_model, &mut rng).unwrap())
        .collect();
    (translator, ParticleCollection::from_traces(traces))
}

/// Exact (bit-level) equality of two collections: same traces in the
/// same order with identical weight bits.
fn assert_bit_identical(a: &ParticleCollection, b: &ParticleCollection, label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: particle counts differ");
    for (i, (pa, pb)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(
            pa.log_weight.log().to_bits(),
            pb.log_weight.log().to_bits(),
            "{label}: weight bits differ at particle {i}"
        );
        assert_eq!(pa.trace, pb.trace, "{label}: trace differs at particle {i}");
    }
}

#[test]
fn pooled_translation_is_bit_identical_across_thread_counts() {
    let (translator, particles) = fixture();
    let baseline = translate_parallel_with_policy(
        &translator,
        &particles,
        4242,
        1,
        &FailurePolicy::FailFast,
        0,
    )
    .unwrap()
    .0;
    for threads in [3, 8] {
        let out = translate_parallel_with_policy(
            &translator,
            &particles,
            4242,
            threads,
            &FailurePolicy::FailFast,
            0,
        )
        .unwrap()
        .0;
        assert_bit_identical(&baseline, &out, &format!("threads={threads}"));
    }
}

#[test]
fn pooled_translation_matches_scoped_reference() {
    let (translator, particles) = fixture();
    for threads in [1, 3, 8] {
        let pooled = translate_parallel_with_policy(
            &translator,
            &particles,
            9000,
            threads,
            &FailurePolicy::FailFast,
            2,
        )
        .unwrap()
        .0;
        let scoped = translate_parallel_with_policy_scoped(
            &translator,
            &particles,
            9000,
            threads,
            &FailurePolicy::FailFast,
            2,
        )
        .unwrap()
        .0;
        assert_bit_identical(
            &pooled,
            &scoped,
            &format!("pooled vs scoped, threads={threads}"),
        );
    }
}

#[test]
fn pool_reuse_across_steps_is_deterministic() {
    // Two passes over the same multi-step edit sequence, interleaved with
    // other pool work by prior tests, must agree bit-for-bit: pool state
    // carries no randomness between steps.
    let (translator, particles) = fixture();
    let run = || {
        let mut current = particles.clone();
        let mut weights = Vec::new();
        for step in 0..5 {
            current = translate_parallel_with_policy(
                &translator,
                &current,
                1000 + step as u64,
                4,
                &FailurePolicy::FailFast,
                step,
            )
            .unwrap()
            .0;
            weights.extend(current.iter().map(|p| p.log_weight.log().to_bits()));
        }
        weights
    };
    assert_eq!(run(), run());
}
