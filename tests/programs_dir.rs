//! The shipped `programs/*.ppl` files parse, pass the static checker, and
//! behave as documented.

use std::fs;
use std::path::PathBuf;

use ppl::check::{check, Severity};
use ppl::{addr, parse, Enumeration};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn programs_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("programs")
}

fn read(name: &str) -> String {
    fs::read_to_string(programs_dir().join(name)).expect("program file exists")
}

#[test]
fn all_shipped_programs_parse_and_check_cleanly() {
    let entries: Vec<_> = fs::read_dir(programs_dir())
        .expect("programs dir exists")
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().map(|x| x == "ppl").unwrap_or(false))
        .collect();
    assert!(entries.len() >= 8, "expected the shipped program set");
    for entry in entries {
        let source = fs::read_to_string(entry.path()).unwrap();
        let program =
            parse(&source).unwrap_or_else(|e| panic!("{:?} fails to parse: {e}", entry.path()));
        let errors: Vec<_> = check(&program)
            .into_iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        assert!(errors.is_empty(), "{:?}: {errors:?}", entry.path());
        // Pretty-print round trip.
        let reparsed = parse(&program.to_string()).unwrap();
        assert_eq!(program, reparsed, "{:?} round trip", entry.path());
    }
}

#[test]
fn shipped_burglary_files_reproduce_figure1() {
    let p = parse(&read("burglary.ppl")).unwrap();
    let q = parse(&read("burglary_earthquake.ppl")).unwrap();
    let burgled = |t: &ppl::Trace| t.return_value().unwrap().truthy().unwrap();
    let e_p = Enumeration::run(&p).unwrap();
    let e_q = Enumeration::run(&q).unwrap();
    assert!((e_p.probability(burgled) - 0.205).abs() < 5e-4);
    assert!((e_q.probability(burgled) - 0.194).abs() < 5e-4);
}

#[test]
fn shipped_example1_has_z_0_7() {
    let p = parse(&read("example1.ppl")).unwrap();
    assert!((Enumeration::run(&p).unwrap().z() - 0.7).abs() < 1e-12);
}

#[test]
fn shipped_geometric_edit_translates_through_the_cli_path() {
    let out = ppl_cli::cmd_translate_stats(&read("geometric.ppl"), &read("geometric_third.ppl"), 3)
        .unwrap();
    assert!(out.contains("log weight"), "{out}");
}

#[test]
fn shipped_gmm_edit_is_the_figure10_workload() {
    let p = parse(&read("gmm.ppl")).unwrap();
    let q = parse(&read("gmm_wide.ppl")).unwrap();
    let translator = depgraph::IncrementalTranslator::from_edit(p.clone(), q);
    let mut rng = StdRng::seed_from_u64(4);
    let graph = depgraph::ExecGraph::simulate(&p, &mut rng).unwrap();
    let result = translator.translate_graph(&graph, &mut rng).unwrap();
    // K = 10 centers reused with a weight ratio; everything else skipped.
    assert!(result.log_weight.log().is_finite());
    assert!(
        result.stats.visited <= 25,
        "visited {}",
        result.stats.visited
    );
    assert!(graph.to_trace().unwrap().has_choice(&addr!["center", 9]));
}
