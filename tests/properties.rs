//! Property-based tests (proptest) of core invariants across the
//! workspace.

use incremental::{
    resample, Correspondence, CorrespondenceTranslator, ParticleCollection, ResampleScheme,
    TraceTranslator,
};
use ppl::dist::Dist;
use ppl::handlers::{score, simulate};
use ppl::logweight::{log_sum_exp, normalize_log_weights};
use ppl::{addr, parse, Enumeration, Handler, LogWeight, PplError, Value};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A parameterized branching model used across the properties.
fn branchy(
    p0: f64,
    p1: f64,
    lo: i64,
    span: i64,
) -> impl Fn(&mut dyn Handler) -> Result<Value, PplError> + Clone {
    move |h: &mut dyn Handler| {
        let a = h.sample(addr!["a"], Dist::flip(p0))?;
        let b = if a.truthy()? {
            h.sample(addr!["b1"], Dist::flip(p1))?
        } else {
            h.sample(addr!["b0"], Dist::uniform_int(lo, lo + span))?
        };
        let obs_p = if b.truthy()? { 0.75 } else { 0.25 };
        h.observe(addr!["o"], Dist::flip(obs_p), Value::Bool(true))?;
        Ok(a)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Simulating then re-scoring the recorded choices reproduces the
    /// score exactly, for arbitrary model parameters and seeds.
    #[test]
    fn simulate_score_round_trip(
        p0 in 0.05f64..0.95,
        p1 in 0.05f64..0.95,
        lo in -5i64..5,
        span in 0i64..6,
        seed in 0u64..1_000,
    ) {
        let model = branchy(p0, p1, lo, span);
        let mut rng = StdRng::seed_from_u64(seed);
        let t = simulate(&model, &mut rng).unwrap();
        let rescored = score(&model, &t.to_choice_map()).unwrap();
        prop_assert!((t.score().log() - rescored.score().log()).abs() < 1e-12);
        prop_assert_eq!(t.return_value(), rescored.return_value());
    }

    /// Without observations, enumeration always sums to exactly 1.
    #[test]
    fn enumeration_normalizes_without_observations(
        p0 in 0.05f64..0.95,
        p1 in 0.05f64..0.95,
        span in 0i64..6,
    ) {
        let model = move |h: &mut dyn Handler| {
            let a = h.sample(addr!["a"], Dist::flip(p0))?;
            if a.truthy()? {
                h.sample(addr!["b"], Dist::flip(p1))?;
            } else {
                h.sample(addr!["c"], Dist::uniform_int(0, span))?;
            }
            Ok(a)
        };
        let e = Enumeration::run(&model).unwrap();
        prop_assert!((e.z() - 1.0).abs() < 1e-12);
    }

    /// The translator's weight estimate always matches the exact Eq. (2)
    /// oracle on the produced pair of traces.
    #[test]
    fn translated_weight_matches_oracle(
        p0 in 0.05f64..0.95,
        q0 in 0.05f64..0.95,
        p1 in 0.05f64..0.95,
        q1 in 0.05f64..0.95,
        seed in 0u64..500,
    ) {
        let p = branchy(p0, p1, 0, 3);
        let q = branchy(q0, q1, 0, 3);
        let corr = Correspondence::identity_on(["a", "b1", "b0"]);
        let translator = CorrespondenceTranslator::new(p.clone(), q.clone(), corr.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        let t = simulate(&p, &mut rng).unwrap();
        let out = translator.translate(&t, &mut rng).unwrap();
        let oracle = incremental::exact_weight_estimate(&p, &q, &corr, &t, &out.trace).unwrap();
        prop_assert!((out.log_weight.log() - oracle.log()).abs() < 1e-9,
            "translator {} vs oracle {}", out.log_weight.log(), oracle.log());
    }

    /// LogWeight algebra: addition is commutative/associative and ONE is
    /// the identity (within floating-point tolerance).
    #[test]
    fn log_weight_algebra(a in 1e-6f64..1.0, b in 1e-6f64..1.0, c in 1e-6f64..1.0) {
        let (wa, wb, wc) = (
            LogWeight::from_prob(a),
            LogWeight::from_prob(b),
            LogWeight::from_prob(c),
        );
        prop_assert!(((wa + wb).log() - (wb + wa).log()).abs() < 1e-12);
        prop_assert!((((wa + wb) + wc).log() - (wa + (wb + wc)).log()).abs() < 1e-12);
        prop_assert!(((wa + LogWeight::ONE).log() - wa.log()).abs() < 1e-12);
        prop_assert!((wa - wa).log().abs() < 1e-12);
    }

    /// Normalized log weights sum to 1 and log_sum_exp upper-bounds the
    /// max.
    #[test]
    fn weight_normalization(ws in proptest::collection::vec(-30.0f64..0.0, 1..40)) {
        let probs = normalize_log_weights(&ws).unwrap();
        let total: f64 = probs.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        let max = ws.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(log_sum_exp(&ws) >= max);
        prop_assert!(log_sum_exp(&ws) <= max + (ws.len() as f64).ln() + 1e-12);
    }

    /// Resampling preserves the particle count, drops zero-weight
    /// particles, and only emits traces from the input.
    #[test]
    fn resampling_invariants(
        weights in proptest::collection::vec(0.0f64..1.0, 2..30),
        scheme_idx in 0usize..4,
        seed in 0u64..1_000,
    ) {
        prop_assume!(weights.iter().any(|w| *w > 0.0));
        let scheme = [
            ResampleScheme::Multinomial,
            ResampleScheme::Systematic,
            ResampleScheme::Stratified,
            ResampleScheme::Residual,
        ][scheme_idx];
        let mut collection = ParticleCollection::new();
        for (i, w) in weights.iter().enumerate() {
            let mut t = ppl::Trace::new();
            let d = Dist::uniform_int(0, weights.len() as i64);
            let lp = d.log_prob(&Value::Int(i as i64));
            t.record_choice(addr!["id"], Value::Int(i as i64), d, lp).unwrap();
            collection.push(t, LogWeight::from_prob(*w));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let out = resample(&collection, scheme, &mut rng).unwrap();
        prop_assert_eq!(out.len(), collection.len());
        for particle in out.iter() {
            let id = particle.trace.value(&addr!["id"]).unwrap().as_int().unwrap() as usize;
            prop_assert!(weights[id] > 0.0, "zero-weight particle {id} survived {scheme:?}");
            prop_assert_eq!(particle.log_weight, LogWeight::ONE);
        }
    }

    /// Correspondence site rules: looking up through the inverse is the
    /// identity on mapped addresses.
    #[test]
    fn correspondence_inverse_round_trip(
        names in proptest::collection::btree_set("[a-z]{1,6}", 1..6),
        idx in 0i64..100,
    ) {
        let names: Vec<String> = names.into_iter().collect();
        let mut f = Correspondence::new();
        for (i, n) in names.iter().enumerate() {
            f.add_site_rule(n, &format!("{n}_p{i}")).unwrap();
        }
        let inv = f.inverse();
        for n in &names {
            let a = addr![n.as_str(), idx];
            let there = f.lookup(&a).unwrap();
            let back = inv.lookup(&there).unwrap();
            prop_assert_eq!(back, a);
        }
    }
}

/// Random program generator for parser round-trips: builds a small valid
/// program, pretty-prints it, re-parses, and compares ASTs.
mod parser_round_trip {
    use super::*;
    use ppl::ast::Program;

    fn expr_strategy(depth: u32) -> impl Strategy<Value = String> {
        let leaf = prop_oneof![
            (-9i64..10).prop_map(|i| i.to_string()),
            (1u32..10).prop_map(|i| format!("{}.5", i)),
            (0usize..3).prop_map(|i| format!("v{i}")),
        ];
        leaf.prop_recursive(depth, 16, 3, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone(), 0usize..5).prop_map(|(a, b, op)| {
                    let ops = ["+", "-", "*", "<", "=="];
                    format!("({a} {} {b})", ops[op])
                }),
                (inner.clone(), inner.clone(), inner.clone())
                    .prop_map(|(c, t, e)| format!("({c} ? {t} : {e})")),
                (1u32..99).prop_map(|p| format!("flip(0.{p:02})")),
                (0i64..5, 1i64..5).prop_map(|(lo, k)| format!("uniform({lo}, {})", lo + k)),
                inner.prop_map(|e| format!("abs({e})")),
            ]
        })
    }

    fn stmt_strategy() -> impl Strategy<Value = String> {
        prop_oneof![
            (0usize..3, expr_strategy(2)).prop_map(|(v, e)| format!("v{v} = {e};")),
            (expr_strategy(1), 0usize..3, 0usize..3)
                .prop_map(|(c, a, b)| { format!("if {c} {{ v{a} = 1; }} else {{ v{b} = 2; }}") }),
            (1u32..99, 0usize..3).prop_map(|(p, v)| format!("observe(flip(0.{p:02}) == v{v});")),
            (0usize..3, 1i64..4, expr_strategy(1))
                .prop_map(|(v, n, e)| { format!("for i{v} in [0..{n}) {{ v{v} = {e}; }}") }),
        ]
    }

    fn program_strategy() -> impl Strategy<Value = String> {
        proptest::collection::vec(stmt_strategy(), 0..5).prop_map(|stmts| {
            let mut src = String::from("v0 = 0; v1 = 1; v2 = 2;\n");
            for s in stmts {
                src.push_str(&s);
                src.push('\n');
            }
            src.push_str("return v0;");
            src
        })
    }

    fn reparse(p: &Program) -> Program {
        parse(&p.to_string()).expect("pretty-printed program re-parses")
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn pretty_print_parse_round_trip(src in program_strategy()) {
            let p1 = parse(&src).unwrap();
            let p2 = reparse(&p1);
            prop_assert_eq!(&p1, &p2, "source:\n{}\nprinted:\n{}", src, p1);
            // Printing is a fixed point after one round.
            prop_assert_eq!(p1.to_string(), p2.to_string());
        }
    }
}
