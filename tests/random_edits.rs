//! Property-based differential testing of the whole incremental pipeline:
//! random surface programs, random constant edits, and the invariant that
//! the Section 6 translator's weight always equals the exact Eq. (2)
//! oracle for the produced trace pair.

mod common;

use common::{perturb_constants, program_strategy};
use depgraph::IncrementalTranslator;
use incremental::{exact_weight_estimate, TraceTranslator};
use ppl::handlers::simulate;
use ppl::parse;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For any generated program, any constant perturbation, and any
    /// seed: the incremental translator's weight matches the exact
    /// oracle, and translating with the identity edit is free.
    #[test]
    fn incremental_weights_match_oracle_on_random_edits(
        src in program_strategy(),
        delta in 1u32..37,
        seed in 0u64..200,
    ) {
        let p = parse(&src).unwrap();
        let q_src = perturb_constants(&src, delta);
        let q = parse(&q_src).unwrap();
        let translator = IncrementalTranslator::from_edit(p.clone(), q.clone());
        let corr = translator.edit().correspondence.clone();
        let mut rng = StdRng::seed_from_u64(seed);
        let t = simulate(&p, &mut rng).unwrap();
        let out = translator.translate(&t, &mut rng).unwrap();
        let oracle = exact_weight_estimate(&p, &q, &corr, &t, &out.trace).unwrap();
        prop_assert!(
            (out.log_weight.log() - oracle.log()).abs() < 1e-9
                || (out.log_weight.is_zero() && oracle.is_zero()),
            "src:\n{src}\nq:\n{q_src}\nincremental {} vs oracle {}",
            out.log_weight.log(),
            oracle.log()
        );
    }

    /// The identity edit is always recognized: zero visits, unit weight.
    #[test]
    fn identity_edit_is_always_free(src in program_strategy(), seed in 0u64..100) {
        let p = parse(&src).unwrap();
        let q = parse(&src).unwrap();
        let translator = IncrementalTranslator::from_edit(p.clone(), q);
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = depgraph::ExecGraph::simulate(&p, &mut rng).unwrap();
        let result = translator.translate_graph(&graph, &mut rng).unwrap();
        prop_assert_eq!(result.stats.visited, 0, "src:\n{}", src);
        prop_assert!(result.log_weight.log().abs() < 1e-12);
        prop_assert_eq!(
            result.graph.to_trace().unwrap().to_choice_map(),
            graph.to_trace().unwrap().to_choice_map()
        );
    }
}
