//! Property-based differential testing of the whole incremental pipeline:
//! random surface programs, random constant edits, and the invariant that
//! the Section 6 translator's weight always equals the exact Eq. (2)
//! oracle for the produced trace pair.

use depgraph::IncrementalTranslator;
use incremental::{exact_weight_estimate, TraceTranslator};
use ppl::handlers::simulate;
use ppl::parse;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A generator of small, runtime-safe surface programs: all variables are
/// pre-initialized, flip probabilities stay in (0, 1), no division.
fn program_strategy() -> impl Strategy<Value = String> {
    let stmt = prop_oneof![
        (0usize..3, 1u32..99).prop_map(|(v, p)| format!("v{v} = flip(0.{p:02});")),
        (0usize..3, 0i64..4, 1i64..5)
            .prop_map(|(v, lo, k)| format!("v{v} = uniform({lo}, {});", lo + k)),
        (0usize..3, 0usize..3, 0usize..3)
            .prop_map(|(v, a, b)| { format!("v{v} = va{a} + va{b};") }),
        (0usize..3, 1u32..99, 0usize..3, 0usize..3).prop_map(|(c, p, a, b)| {
            format!("if va{c} > 0 {{ va{a} = flip(0.{p:02}); }} else {{ va{b} = 1; }}")
        }),
        (1u32..99, 0usize..3)
            .prop_map(|(p, v)| { format!("observe(flip(0.{p:02}) == (va{v} > 0));") }),
        (0usize..3, 1i64..4, 1u32..99).prop_map(|(v, n, p)| {
            format!("for i{v} in [0..{n}) {{ va{v} = flip(0.{p:02}); }}")
        }),
    ];
    proptest::collection::vec(stmt, 1..6).prop_map(|stmts| {
        let mut src = String::from("va0 = 1; va1 = 0; va2 = 1; v0 = 0; v1 = 0; v2 = 0;\n");
        for s in stmts {
            src.push_str(&s);
            src.push('\n');
        }
        src.push_str("return va0;");
        src
    })
}

/// Perturbs every `0.XX` constant by a deterministic amount, producing a
/// semantically different but structurally identical program — the
/// "hyperparameter edit" shape.
fn perturb_constants(src: &str, delta: u32) -> String {
    let mut out = String::with_capacity(src.len());
    let mut chars = src.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '0' && chars.peek() == Some(&'.') {
            chars.next(); // '.'
            let mut digits = String::new();
            while chars.peek().map(|d| d.is_ascii_digit()).unwrap_or(false) {
                digits.push(chars.next().unwrap());
            }
            if digits.is_empty() {
                // Not a real literal — e.g. the `0..` of a range.
                out.push_str("0.");
                continue;
            }
            let value: u32 = digits.parse().unwrap_or(50);
            let scale = 10u32.pow(digits.len() as u32);
            // Stay strictly inside (0, scale).
            let perturbed = (value + delta) % (scale - 1) + 1;
            out.push_str(&format!("0.{perturbed:0width$}", width = digits.len()));
        } else {
            out.push(c);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For any generated program, any constant perturbation, and any
    /// seed: the incremental translator's weight matches the exact
    /// oracle, and translating with the identity edit is free.
    #[test]
    fn incremental_weights_match_oracle_on_random_edits(
        src in program_strategy(),
        delta in 1u32..37,
        seed in 0u64..200,
    ) {
        let p = parse(&src).unwrap();
        let q_src = perturb_constants(&src, delta);
        let q = parse(&q_src).unwrap();
        let translator = IncrementalTranslator::from_edit(p.clone(), q.clone());
        let corr = translator.edit().correspondence.clone();
        let mut rng = StdRng::seed_from_u64(seed);
        let t = simulate(&p, &mut rng).unwrap();
        let out = translator.translate(&t, &mut rng).unwrap();
        let oracle = exact_weight_estimate(&p, &q, &corr, &t, &out.trace).unwrap();
        prop_assert!(
            (out.log_weight.log() - oracle.log()).abs() < 1e-9
                || (out.log_weight.is_zero() && oracle.is_zero()),
            "src:\n{src}\nq:\n{q_src}\nincremental {} vs oracle {}",
            out.log_weight.log(),
            oracle.log()
        );
    }

    /// The identity edit is always recognized: zero visits, unit weight.
    #[test]
    fn identity_edit_is_always_free(src in program_strategy(), seed in 0u64..100) {
        let p = parse(&src).unwrap();
        let q = parse(&src).unwrap();
        let translator = IncrementalTranslator::from_edit(p.clone(), q);
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = depgraph::ExecGraph::simulate(&p, &mut rng).unwrap();
        let result = translator.translate_graph(&graph, &mut rng).unwrap();
        prop_assert_eq!(result.stats.visited, 0, "src:\n{}", src);
        prop_assert!(result.log_weight.log().abs() < 1e-12);
        prop_assert_eq!(
            result.graph.to_trace().unwrap().to_choice_map(),
            graph.to_trace().unwrap().to_choice_map()
        );
    }
}
