//! Sequential-observation SMC as a special case of trace translation.
//!
//! The related-work section claims: "Our work generalizes the sequential
//! observation case studied in previous work" — conditioning on data one
//! batch at a time (the classic SMC-for-PPL setting of [19, 29, 37, 45])
//! is just a program sequence where each program observes a prefix of the
//! data, with the identity correspondence on the latents. This test
//! exercises that construction end to end on a Gaussian-mean model and
//! checks the result against the conjugate closed form.

use incremental::{
    infer, Correspondence, CorrespondenceTranslator, ParticleCollection, ResamplePolicy, SmcConfig,
};
use ppl::dist::Dist;
use ppl::handlers::simulate;
use ppl::{addr, Handler, PplError, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The model observing the first `n` data points: mu ~ N(0, 3), each
/// `y_i ~ N(mu, 1)`.
fn prefix_model(
    data: &[f64],
    n: usize,
) -> impl Fn(&mut dyn Handler) -> Result<Value, PplError> + Clone {
    let data: Vec<f64> = data[..n].to_vec();
    move |h: &mut dyn Handler| {
        let mu = h.sample(addr!["mu"], Dist::normal(0.0, 3.0))?;
        for (i, y) in data.iter().enumerate() {
            h.observe(
                addr!["y", i],
                Dist::normal(mu.as_real()?, 1.0),
                Value::Real(*y),
            )?;
        }
        Ok(mu)
    }
}

/// Conjugate posterior for the Gaussian mean.
fn exact_posterior(data: &[f64], prior_std: f64, noise_std: f64) -> (f64, f64) {
    let prior_prec = 1.0 / (prior_std * prior_std);
    let noise_prec = 1.0 / (noise_std * noise_std);
    let prec = prior_prec + data.len() as f64 * noise_prec;
    let mean = noise_prec * data.iter().sum::<f64>() / prec;
    (mean, 1.0 / prec)
}

#[test]
fn data_annealing_by_trace_translation() {
    // A fixed data set drawn around mu = 1.7.
    let data = [2.1, 1.4, 1.9, 1.2, 2.4, 1.5, 1.8, 2.0, 1.1, 1.6];
    let mut rng = StdRng::seed_from_u64(7);

    // Stage 0 observes nothing: prior samples ARE posterior samples.
    let m = 20_000;
    let initial_model = prefix_model(&data, 0);
    let traces: Vec<_> = (0..m)
        .map(|_| simulate(&initial_model, &mut rng).unwrap())
        .collect();
    let mut collection = ParticleCollection::from_traces(traces);

    // Observe the data two points at a time: each stage is a translator
    // from the (n)-observation program to the (n+2)-observation program
    // with the identity correspondence on mu.
    let config = SmcConfig {
        resample: ResamplePolicy::EssBelow(0.5),
        ..SmcConfig::default()
    };
    let mut n = 0;
    while n < data.len() {
        let next = (n + 2).min(data.len());
        let translator = CorrespondenceTranslator::new(
            prefix_model(&data, n),
            prefix_model(&data, next),
            Correspondence::identity_on(["mu"]),
        );
        collection = infer(&translator, None, &collection, &config, &mut rng).unwrap();
        n = next;
    }

    let (exact_mean, exact_var) = exact_posterior(&data, 3.0, 1.0);
    let mu = |t: &ppl::Trace| t.value(&addr!["mu"]).unwrap().as_real().unwrap();
    let est_mean = collection.estimate(mu).unwrap();
    let est_var = collection
        .estimate(|t| {
            let x = mu(t);
            x * x
        })
        .unwrap()
        - est_mean * est_mean;
    assert!(
        (est_mean - exact_mean).abs() < 0.05,
        "mean {est_mean} vs exact {exact_mean}"
    );
    assert!(
        (est_var - exact_var).abs() < 0.05,
        "var {est_var} vs exact {exact_var}"
    );
}

/// The same chain run in one shot (translate directly from prior to the
/// full-data program) suffers far worse degeneracy than the annealed
/// schedule — the reason sequential observation exists.
#[test]
fn annealing_beats_one_shot_in_ess() {
    let data = [2.1, 1.4, 1.9, 1.2, 2.4, 1.5, 1.8, 2.0, 1.1, 1.6];
    let m = 5_000;
    let mut rng = StdRng::seed_from_u64(8);
    let initial_model = prefix_model(&data, 0);
    let traces: Vec<_> = (0..m)
        .map(|_| simulate(&initial_model, &mut rng).unwrap())
        .collect();
    let initial = ParticleCollection::from_traces(traces);

    // One shot.
    let one_shot = CorrespondenceTranslator::new(
        prefix_model(&data, 0),
        prefix_model(&data, data.len()),
        Correspondence::identity_on(["mu"]),
    );
    let direct = infer(
        &one_shot,
        None,
        &initial,
        &SmcConfig::translate_only(),
        &mut rng,
    )
    .unwrap();

    // Annealed with resampling between stages.
    let config = SmcConfig {
        resample: ResamplePolicy::Always,
        ..SmcConfig::default()
    };
    let mut annealed = initial.clone();
    let mut n = 0;
    while n < data.len() {
        let next = (n + 2).min(data.len());
        let translator = CorrespondenceTranslator::new(
            prefix_model(&data, n),
            prefix_model(&data, next),
            Correspondence::identity_on(["mu"]),
        );
        annealed = infer(&translator, None, &annealed, &config, &mut rng).unwrap();
        n = next;
    }
    // After the final resample the annealed collection is unweighted;
    // compare the *distinct trace* count instead: a degenerate one-shot
    // run concentrates its weight on a handful of prior draws.
    let direct_ess = direct.ess();
    assert!(
        direct_ess < 0.25 * m as f64,
        "one-shot ESS {direct_ess} should be degenerate"
    );
    // The annealed posterior mean is still accurate.
    let mu = |t: &ppl::Trace| t.value(&addr!["mu"]).unwrap().as_real().unwrap();
    let (exact_mean, _) = {
        let prior_prec = 1.0 / 9.0;
        let prec = prior_prec + data.len() as f64;
        (data.iter().sum::<f64>() / prec, ())
    };
    let est = annealed.estimate(mu).unwrap();
    assert!(
        (est - exact_mean).abs() < 0.1,
        "annealed mean {est} vs exact {exact_mean}"
    );
}
