//! Soundness of the static impact slice (`ppl::analysis`) against the
//! dynamic propagation runtime: with `--verify-slices` enabled, every
//! translation checks that each dynamically visited statement lies inside
//! the statically computed [`ppl::analysis::ImpactSet`] and fails loudly
//! otherwise. These tests drive that oracle over random programs, random
//! hyperparameter edits, whole edit sequences, and every runner flavor
//! (flat, graph-native, pooled at several thread counts).

mod common;

use std::sync::Arc;

use common::{perturb_constants, program_strategy};
use depgraph::{
    run_edit_sequence, run_edit_sequence_parallel_with_policy, ExecGraph, IncrementalTranslator,
};
use incremental::{collection_checksum, FailurePolicy, ParticleCollection, SmcConfig};
use ppl::handlers::simulate;
use ppl::parse;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Flattens a collection to checksum-ready weighted choice-map entries.
fn entries(collection: &ParticleCollection) -> Vec<(ppl::ChoiceMap, f64)> {
    collection
        .iter()
        .map(|p| (p.trace.to_choice_map(), p.log_weight.log()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For any generated program, constant perturbation, and seed: the
    /// slice oracle holds — no dynamically visited statement falls
    /// outside the static impact set. The oracle runs inside
    /// `translate_graph` when verify-slices is on and turns any
    /// violation into an error.
    #[test]
    fn visited_statements_stay_inside_the_static_slice(
        src in program_strategy(),
        delta in 1u32..37,
        seed in 0u64..200,
    ) {
        depgraph::set_verify_slices(true);
        let p = parse(&src).unwrap();
        let q_src = perturb_constants(&src, delta);
        let q = parse(&q_src).unwrap();
        let translator = IncrementalTranslator::from_edit(p.clone(), q);
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = ExecGraph::simulate(&p, &mut rng).unwrap();
        let result = translator.translate_graph(&graph, &mut rng);
        prop_assert!(
            result.is_ok(),
            "slice oracle rejected src:\n{src}\nq:\n{q_src}\n{}",
            result.err().map(|e| e.to_string()).unwrap_or_default()
        );
        let result = result.unwrap();
        // The oracle checks each *distinct* visited statement once;
        // `visited` counts instances (loop iterations included).
        prop_assert!(result.stats.oracle_checks <= result.stats.visited);
        prop_assert!(result.stats.visited == 0 || result.stats.oracle_checks > 0);
    }

    /// The identity edit is statically fully pruned: every top-level
    /// statement is skipped by the impact slice before any dirty bit is
    /// consulted, and nothing is visited.
    #[test]
    fn identity_edit_is_statically_pruned(src in program_strategy(), seed in 0u64..100) {
        depgraph::set_verify_slices(true);
        let p = parse(&src).unwrap();
        let q = parse(&src).unwrap();
        let top_level = p.body.stmts().len();
        let translator = IncrementalTranslator::from_edit(p.clone(), q);
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = ExecGraph::simulate(&p, &mut rng).unwrap();
        let result = translator.translate_graph(&graph, &mut rng).unwrap();
        prop_assert_eq!(result.stats.visited, 0, "src:\n{}", src);
        prop_assert_eq!(result.stats.static_skips, top_level, "src:\n{}", src);
    }

    /// The oracle holds across whole edit sequences driven by the flat
    /// runner (graph built from each trace per stage).
    #[test]
    fn slice_oracle_holds_across_flat_sequences(
        src in program_strategy(),
        delta in 1u32..23,
        seed in 0u64..50,
    ) {
        depgraph::set_verify_slices(true);
        let sources = [
            src.clone(),
            perturb_constants(&src, delta),
            perturb_constants(&src, delta * 2),
        ];
        let programs: Vec<_> = sources.iter().map(|s| parse(s).unwrap()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let traces: Vec<_> = (0..4)
            .map(|_| simulate(&programs[0], &mut rng).unwrap())
            .collect();
        let particles = ParticleCollection::from_traces(traces);
        let run = run_edit_sequence(
            &programs,
            &particles,
            &SmcConfig::translate_only(),
            &FailurePolicy::FailFast,
            &mut rng,
        );
        prop_assert!(
            run.is_ok(),
            "slice oracle rejected sequence of:\n{}\n{}",
            sources.join("\n---\n"),
            run.err().map(|e| e.to_string()).unwrap_or_default()
        );
    }
}

/// The pooled graph-native runner under the oracle: bit-identical output
/// for thread counts 1, 3, and 8, all passing the slice check.
#[test]
fn slice_oracle_holds_for_every_thread_count() {
    depgraph::set_verify_slices(true);
    let p0 =
        "x = flip(0.3) @ x; y = flip(0.6) @ y; observe(flip(x ? 0.9 : 0.1) @ o == 1); return x;";
    let p1 =
        "x = flip(0.3) @ x; y = flip(0.6) @ y; observe(flip(x ? 0.95 : 0.05) @ o == 1); return x;";
    let p2 =
        "x = flip(0.3) @ x; y = flip(0.7) @ y; observe(flip(x ? 0.95 : 0.05) @ o == 1); return x;";
    let programs: Vec<_> = [p0, p1, p2].iter().map(|s| parse(s).unwrap()).collect();
    let mut rng = StdRng::seed_from_u64(11);
    let traces: Vec<_> = (0..64)
        .map(|_| simulate(&programs[0], &mut rng).unwrap())
        .collect();
    let particles = ParticleCollection::from_traces(traces);
    let mut checksums = Vec::new();
    for threads in [1usize, 3, 8] {
        let mut rng = StdRng::seed_from_u64(7);
        let run = run_edit_sequence_parallel_with_policy(
            &programs,
            &particles,
            &SmcConfig::translate_only(),
            &FailurePolicy::FailFast,
            42,
            threads,
            &mut rng,
        )
        .unwrap_or_else(|e| panic!("{threads} threads: {e}"));
        let flat = run.last().flatten().unwrap();
        checksums.push(collection_checksum(&entries(&flat)));
    }
    assert_eq!(checksums[0], checksums[1]);
    assert_eq!(checksums[0], checksums[2]);
}

/// Static pre-pruning fires on a real hyperparameter edit: statements
/// after the edited one that do not read its writes are pruned by the
/// slice without consulting dirty bits, and pruning does not change the
/// translated graph.
#[test]
fn static_pruning_skips_the_unaffected_suffix() {
    depgraph::set_verify_slices(true);
    let p_src = "a = flip(0.2) @ a; b = flip(0.5) @ b; c = flip(0.7) @ c; return c;";
    let q_src = "a = flip(0.4) @ a; b = flip(0.5) @ b; c = flip(0.7) @ c; return c;";
    let p = parse(p_src).unwrap();
    let q = parse(q_src).unwrap();
    let translator = IncrementalTranslator::from_edit(p.clone(), q);
    assert_eq!(translator.plan().impact().impacted.len(), 1);
    assert_eq!(translator.plan().impact().skippable_count(), 2);
    let mut rng = StdRng::seed_from_u64(3);
    let graph = ExecGraph::simulate(&p, &mut rng).unwrap();
    let result = translator.translate_graph(&graph, &mut rng).unwrap();
    assert_eq!(result.stats.visited, 1);
    assert_eq!(result.stats.static_skips, 2);
    // Every choice is reused (the edit only rescales a flip parameter),
    // so pruning leaves the translated choices bit-identical.
    let before = graph.to_trace().unwrap().to_choice_map();
    let after = result.graph.to_trace().unwrap().to_choice_map();
    assert_eq!(before, after);
}

/// The graph-native runner over shared program handles also passes the
/// oracle (pointer-identity validation path).
#[test]
fn slice_oracle_holds_on_shared_edit_chains() {
    depgraph::set_verify_slices(true);
    let p0 = "n = 3; s = 0; for i in [0..n) { s = s + uniform(0, 2) @ u; } return s;";
    let p1 = "n = 3; s = 1; for i in [0..n) { s = s + uniform(0, 2) @ u; } return s;";
    let a = Arc::new(parse(p0).unwrap());
    let b = Arc::new(parse(p1).unwrap());
    let translator = IncrementalTranslator::from_shared(Arc::clone(&a), b);
    let mut rng = StdRng::seed_from_u64(9);
    let graph = ExecGraph::simulate(&a, &mut rng).unwrap();
    let result = translator.translate_graph(&graph, &mut rng).unwrap();
    assert!(result.stats.visited > 0);
    assert!(result.stats.oracle_checks > 0);
    assert!(result.stats.oracle_checks <= result.stats.visited);
}
