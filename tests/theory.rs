#![allow(clippy::type_complexity)] // fn-pointer model types are spelled out for clarity

//! Integration tests of the paper's formal guarantees (Lemma 2 and the
//! supplemental Lemmas 4–7), checked against exact enumeration.

use incremental::{
    infer, translator_error, Correspondence, CorrespondenceTranslator, ParticleCollection,
    SmcConfig, TraceTranslator,
};
use inference::{ExactPosterior, SingleSiteMh};
use ppl::dist::Dist;
use ppl::{addr, Enumeration, Handler, PplError, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn p_model(h: &mut dyn Handler) -> Result<Value, PplError> {
    let x = h.sample(addr!["x"], Dist::flip(0.4))?;
    let po = if x.truthy()? { 0.7 } else { 0.2 };
    h.observe(addr!["o"], Dist::flip(po), Value::Bool(true))?;
    Ok(x)
}

fn q_model(h: &mut dyn Handler) -> Result<Value, PplError> {
    let x = h.sample(addr!["x"], Dist::flip(0.4))?;
    let y = h.sample(addr!["y"], Dist::flip(0.25))?;
    let po = if x.truthy()? || y.truthy()? { 0.9 } else { 0.1 };
    h.observe(addr!["o"], Dist::flip(po), Value::Bool(true))?;
    Ok(x)
}

fn translator() -> CorrespondenceTranslator<
    fn(&mut dyn Handler) -> Result<Value, PplError>,
    fn(&mut dyn Handler) -> Result<Value, PplError>,
> {
    CorrespondenceTranslator::new(p_model, q_model, Correspondence::identity_on(["x"]))
}

/// Lemma 4: `E[ŵ(U; T) | U = u] = (Z_Q / Z_P) · w(u)`, verified in the
/// aggregate form of Lemma 6: `(1/M) Σ ŵ_j → Z_Q / Z_P` for `t_j ∼ P`.
#[test]
fn lemma6_mean_weight_converges_to_z_ratio() {
    let z_p = Enumeration::run(&p_model).unwrap().z();
    let z_q = Enumeration::run(&q_model).unwrap().z();
    let sampler = ExactPosterior::new(&p_model).unwrap();
    let translator = translator();
    let mut rng = StdRng::seed_from_u64(10);
    let m = 200_000;
    let mut total = 0.0;
    for _ in 0..m {
        let t = sampler.sample(&mut rng);
        let out = translator.translate(&t, &mut rng).unwrap();
        total += out.log_weight.prob();
    }
    let estimate = total / m as f64;
    let expected = z_q / z_p;
    assert!(
        (estimate - expected).abs() < 0.01 * expected,
        "mean weight {estimate} vs Z_Q/Z_P {expected}"
    );
}

/// Lemma 7 / Lemma 2 without MCMC: the self-normalized estimator
/// converges to `E_{u∼Q}[φ(u)]`.
#[test]
fn lemma7_self_normalized_estimator_converges() {
    let exact = Enumeration::run(&q_model)
        .unwrap()
        .probability(|t| t.value(&addr!["x"]).unwrap().truthy().unwrap());
    let sampler = ExactPosterior::new(&p_model).unwrap();
    let translator = translator();
    let mut rng = StdRng::seed_from_u64(11);
    let particles = ParticleCollection::from_traces(sampler.samples(100_000, &mut rng));
    let adapted = infer(
        &translator,
        None,
        &particles,
        &SmcConfig::translate_only(),
        &mut rng,
    )
    .unwrap();
    let estimate = adapted
        .probability(|t| t.value(&addr!["x"]).unwrap().truthy().unwrap())
        .unwrap();
    assert!(
        (estimate - exact).abs() < 0.01,
        "estimate {estimate} vs exact {exact}"
    );
}

/// Lemma 2 with MCMC rejuvenation: appending a posterior-invariant
/// kernel must not change the limit (and helps the y marginal, which the
/// translator samples from the prior).
#[test]
fn lemma2_with_mcmc_rejuvenation() {
    let exact_y = Enumeration::run(&q_model)
        .unwrap()
        .probability(|t| t.value(&addr!["y"]).unwrap().truthy().unwrap());
    let sampler = ExactPosterior::new(&p_model).unwrap();
    let translator = translator();
    let kernel = SingleSiteMh::new(q_model as fn(&mut dyn Handler) -> Result<Value, PplError>);
    let mut rng = StdRng::seed_from_u64(12);
    let particles = ParticleCollection::from_traces(sampler.samples(60_000, &mut rng));
    let config = SmcConfig {
        mcmc_steps: 3,
        ..SmcConfig::translate_only()
    };
    let adapted = infer(&translator, Some(&kernel), &particles, &config, &mut rng).unwrap();
    let estimate = adapted
        .probability(|t| t.value(&addr!["y"]).unwrap().truthy().unwrap())
        .unwrap();
    assert!(
        (estimate - exact_y).abs() < 0.015,
        "estimate {estimate} vs exact {exact_y}"
    );
}

/// The Section 5.3 identity: ε(R) equals the sum of the three error
/// terms, across several model pairs.
#[test]
fn section53_decomposition_identity() {
    let pairs: Vec<(
        fn(&mut dyn Handler) -> Result<Value, PplError>,
        fn(&mut dyn Handler) -> Result<Value, PplError>,
        Correspondence,
    )> = vec![
        (p_model, q_model, Correspondence::identity_on(["x"])),
        (p_model, p_model, Correspondence::identity_on(["x"])),
        (q_model, p_model, Correspondence::identity_on(["x"])),
        (p_model, q_model, Correspondence::new()),
    ];
    for (p, q, f) in pairs {
        let report = translator_error(&p, &q, &f).unwrap();
        assert!(
            (report.epsilon - report.decomposition_sum()).abs() < 1e-9,
            "eps {} vs sum {}",
            report.epsilon,
            report.decomposition_sum()
        );
        assert!(report.semantic_term >= -1e-12);
        assert!(report.forward_sampling_term >= -1e-12);
        assert!(report.backward_sampling_term >= -1e-12);
    }
}

/// "If every random choice in P is in correspondence with some random
/// choice in Q, then the third term is zero" (Section 5.3).
#[test]
fn third_term_zero_when_p_fully_covered() {
    let report = translator_error(&p_model, &q_model, &Correspondence::identity_on(["x"])).unwrap();
    assert!(report.backward_sampling_term.abs() < 1e-12);
}

/// Degenerate-weight soundness: a translator whose backward kernel
/// cannot reproduce `t` yields weight zero (not a wrong finite weight).
#[test]
fn zero_backward_density_gives_zero_weight() {
    // Correspondence maps x ↦ x but the P-side trace is constructed with
    // a value that Q would overwrite differently on reuse — impossible
    // under always-reuse, so instead check the Eq. (2) oracle directly
    // for a mismatched pair of traces.
    let f = Correspondence::identity_on(["x"]);
    let mut t = ppl::Trace::new();
    let d = Dist::flip(0.4);
    let lp = d.log_prob(&Value::Bool(true));
    t.record_choice(addr!["x"], Value::Bool(true), d, lp)
        .unwrap();
    let d = Dist::flip(0.7);
    let lp = d.log_prob(&Value::Bool(true));
    t.record_observation(addr!["o"], Value::Bool(true), d, lp)
        .unwrap();
    // u disagrees with t on the corresponding choice.
    let mut u = ppl::Trace::new();
    let d = Dist::flip(0.4);
    let lp = d.log_prob(&Value::Bool(false));
    u.record_choice(addr!["x"], Value::Bool(false), d, lp)
        .unwrap();
    let d = Dist::flip(0.25);
    let lp = d.log_prob(&Value::Bool(false));
    u.record_choice(addr!["y"], Value::Bool(false), d, lp)
        .unwrap();
    let d = Dist::flip(0.1);
    let lp = d.log_prob(&Value::Bool(true));
    u.record_observation(addr!["o"], Value::Bool(true), d, lp)
        .unwrap();
    let w = incremental::exact_weight_estimate(&p_model, &q_model, &f, &t, &u).unwrap();
    assert!(w.is_zero(), "weight {w:?} should be zero");
}
