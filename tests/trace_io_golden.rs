//! Golden-file test pinning the `trace_io` serialized format.
//!
//! The performance work on addresses (interning, small-vector storage,
//! fast-hash indices) must not change a single byte of serialized output:
//! this test renders a deterministic weighted collection with nested,
//! quoted, and indexed addresses and compares it against a committed
//! golden file produced by the pre-optimization implementation.
//!
//! Regenerate with `BLESS=1 cargo test --test trace_io_golden` after an
//! *intentional* format change only.

use ppl::trace_io::{parse_weighted_collection, write_weighted_collection};
use ppl::{addr, ChoiceMap, Value};

const GOLDEN_PATH: &str = "tests/golden/trace_io_collection.txt";

/// A deterministic collection exercising every value tag and address
/// shape: symbols, indices, nesting depth 1–4, symbols needing quoting,
/// and the root address.
fn reference_collection() -> Vec<(ChoiceMap, f64)> {
    let mut m1 = ChoiceMap::new();
    m1.insert(addr!["x"], Value::Bool(true));
    m1.insert(addr!["y", 3], Value::Int(-7));
    m1.insert(addr!["state", 0, "inner"], Value::Real(0.125));
    m1.insert(
        addr!["arr"],
        Value::Array(vec![Value::Int(1), Value::Bool(false), Value::Real(2.5)].into()),
    );

    // Note: the root address `<root>` serializes to an empty string the
    // parser rejects, so it is deliberately absent from this corpus.
    let mut m2 = ChoiceMap::new();
    m2.insert(addr![-9, "neg"], Value::Int(42));
    m2.insert(addr!["needs quoting", 1], Value::Bool(false));
    m2.insert(addr!["a/slash"], Value::Real(-1.5e-3));
    m2.insert(addr!["deep", 1, "er", 2], Value::Int(0));

    // Deliberately inserted out of address order: serialization must sort.
    let mut m3 = ChoiceMap::new();
    for i in [5_i64, 0, 3, 1, 4, 2] {
        m3.insert(addr!["flip", i], Value::Bool(i % 2 == 0));
    }

    vec![(m1, 0.0), (m2, -1.5), (m3, -0.037_109_375)]
}

#[test]
fn serialized_output_matches_golden_file() {
    let rendered = write_weighted_collection(&reference_collection());
    if std::env::var("BLESS").is_ok() {
        std::fs::create_dir_all("tests/golden").unwrap();
        std::fs::write(GOLDEN_PATH, &rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing — run with BLESS=1 to create it");
    assert_eq!(
        rendered, golden,
        "trace_io output changed; if intentional, re-bless with BLESS=1"
    );
}

#[test]
fn golden_file_round_trips() {
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing — run with BLESS=1 to create it");
    let parsed = parse_weighted_collection(&golden).unwrap();
    let reference = reference_collection();
    assert_eq!(parsed.len(), reference.len());
    for ((pm, pw), (rm, rw)) in parsed.iter().zip(reference.iter()) {
        assert_eq!(pm, rm);
        assert_eq!(pw.to_bits(), rw.to_bits());
    }
}
