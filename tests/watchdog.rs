//! Watchdog-supervision integration tests: deterministic hang injection
//! ([`FaultKind::Hang`]) against the deadline-supervised SMC runtime.
//!
//! Contracts pinned here, one per [`FailurePolicy`]:
//! - **Retry**: a transiently hung particle times out, is retried with
//!   backoff, recovers, and the run's output is bit-identical to a
//!   fault-free run (the hung attempt's late result is discarded).
//! - **Drop**: permanently hung particles are quarantined as
//!   [`FailureKind::Timeout`] within the loss budget.
//! - **Fail-fast**: a hung particle surfaces as a typed
//!   [`SmcError::Particle`] carrying the timeout.
//!
//! All hangs are far longer than the deadline, and every test asserts a
//! wall-clock bound: the supervisor must abandon hung workers rather
//! than wait them out.

use std::sync::Arc;
use std::time::{Duration, Instant};

use incremental::{
    collection_checksum, run_state_sequence_supervised, Backoff, Correspondence,
    CorrespondenceTranslator, FailureKind, FailurePolicy, FaultKind, FaultPlan, FaultSpec,
    FaultyTranslator, ParticleCollection, SequenceRun, SmcConfig, SmcError, StagePolicy,
    StateTranslator, TraceStateAdapter,
};
use ppl::dist::Dist;
use ppl::handlers::simulate;
use ppl::{addr, Handler, PplError, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N_PARTICLES: usize = 32;
const SEED: u64 = 99;
/// Hung translations sleep 600 ms; the watchdog gives up after 150 ms.
const HANG: Duration = Duration::from_millis(600);
const DEADLINE: Duration = Duration::from_millis(150);

fn model_with_obs(p_obs_true: f64) -> impl Fn(&mut dyn Handler) -> Result<Value, PplError> {
    move |h: &mut dyn Handler| {
        let x = h.sample(addr!["x"], Dist::flip(0.5))?;
        let po = if x.truthy()? {
            p_obs_true
        } else {
            1.0 - p_obs_true
        };
        h.observe(addr!["o"], Dist::flip(po), Value::Bool(true))?;
        Ok(x)
    }
}

/// Supervised stages for the edit history 0.5 → 0.6 → 0.8, wrapped in
/// hang-injecting fault translators. With the identity correspondence on
/// every site, translation reuses all choices and consumes no fresh
/// randomness — so a recovered retry (different RNG stream) must still
/// reproduce the fault-free result exactly.
fn stages(plan: &FaultPlan) -> Vec<Arc<dyn StateTranslator<ppl::Trace> + Send + Sync>> {
    [(0.5, 0.6), (0.6, 0.8)]
        .into_iter()
        .map(|(p_from, p_to)| {
            let inner = CorrespondenceTranslator::new(
                model_with_obs(p_from),
                model_with_obs(p_to),
                Correspondence::identity_on(["x"]),
            );
            Arc::new(TraceStateAdapter(FaultyTranslator::new(
                inner,
                plan.clone(),
            ))) as Arc<dyn StateTranslator<ppl::Trace> + Send + Sync>
        })
        .collect()
}

fn initial_particles() -> ParticleCollection {
    let m0 = model_with_obs(0.5);
    let mut rng = StdRng::seed_from_u64(5);
    ParticleCollection::from_traces((0..N_PARTICLES).map(|_| simulate(&m0, &mut rng).unwrap()))
}

fn run_supervised(
    plan: &FaultPlan,
    policy: &FailurePolicy,
    stage_policy: &StagePolicy,
) -> Result<SequenceRun, SmcError> {
    run_state_sequence_supervised(
        &stages(plan),
        &initial_particles(),
        0,
        &[],
        &[],
        &SmcConfig::translate_only(),
        policy,
        stage_policy,
        SEED,
        1,
        None,
    )
}

fn watched() -> StagePolicy {
    StagePolicy::default()
        .with_deadline(DEADLINE)
        .with_backoff(Backoff::new(
            Duration::from_millis(10),
            2.0,
            Duration::from_millis(100),
        ))
}

fn checksum(run: &SequenceRun) -> u64 {
    let entries: Vec<_> = run
        .last()
        .iter()
        .map(|p| (p.trace.to_choice_map(), p.log_weight.log()))
        .collect();
    collection_checksum(&entries)
}

#[test]
fn transient_hang_retries_with_backoff_and_matches_fault_free_run() {
    let start = Instant::now();
    let clean = run_supervised(&FaultPlan::new(), &FailurePolicy::FailFast, &watched())
        .expect("fault-free supervised run");

    let plan = FaultPlan::new()
        .with(FaultSpec::once(1, 3, FaultKind::Hang))
        .with_hang_duration(HANG);
    let policy = FailurePolicy::Retry {
        max_attempts: 3,
        seed: 1,
    };
    let run = run_supervised(&plan, &policy, &watched()).expect("retry recovers the hang");

    assert_eq!(run.reports[0].retries, 0);
    assert_eq!(run.reports[1].retries, 1, "{:?}", run.reports[1]);
    assert_eq!(run.reports[1].recovered, 1);
    assert_eq!(run.reports[1].dropped, 0);
    assert_eq!(
        checksum(&run),
        checksum(&clean),
        "recovered run must be bit-identical to the fault-free run"
    );
    assert!(
        start.elapsed() < Duration::from_secs(20),
        "watchdog must not wait out hung workers"
    );
}

#[test]
fn permanent_hangs_are_dropped_as_timeouts_within_budget() {
    let start = Instant::now();
    let plan = FaultPlan::new()
        .with(FaultSpec::always(0, 2, FaultKind::Hang))
        .with(FaultSpec::always(0, 9, FaultKind::Hang))
        .with_hang_duration(HANG);
    let policy = FailurePolicy::DropAndRenormalize { max_loss: 0.1 };
    let run = run_supervised(&plan, &policy, &watched()).expect("drop absorbs the hangs");

    let report = &run.reports[0];
    assert_eq!(report.dropped, 2, "{report:?}");
    assert_eq!(report.output_particles, N_PARTICLES - 2);
    let mut hung: Vec<usize> = report.failures.iter().map(|f| f.particle).collect();
    hung.sort_unstable();
    assert_eq!(hung, vec![2, 9]);
    for failure in &report.failures {
        assert_eq!(
            failure.kind,
            FailureKind::Timeout {
                waited_ms: DEADLINE.as_millis() as u64
            },
            "{failure:?}"
        );
    }
    // The second stage is fault-free.
    assert_eq!(run.reports[1].dropped, 0);
    assert!(start.elapsed() < Duration::from_secs(20));
}

#[test]
fn fail_fast_surfaces_a_hang_as_a_typed_timeout_error() {
    let start = Instant::now();
    let plan = FaultPlan::new()
        .with(FaultSpec::always(0, 4, FaultKind::Hang))
        .with_hang_duration(HANG);
    let err = run_supervised(&plan, &FailurePolicy::FailFast, &watched())
        .expect_err("fail-fast must surface the hang");
    match err {
        SmcError::Particle(f) => {
            assert_eq!(f.step, 0);
            assert_eq!(f.particle, 4);
            assert_eq!(f.attempts, 1);
            assert_eq!(
                f.kind,
                FailureKind::Timeout {
                    waited_ms: DEADLINE.as_millis() as u64
                }
            );
        }
        other => panic!("expected SmcError::Particle, got {other:?}"),
    }
    assert!(start.elapsed() < Duration::from_secs(20));
}

/// Retry exhaustion on a permanent hang: every attempt times out and the
/// run fails with the *last* attempt's timeout, having spent the full
/// retry budget.
#[test]
fn retry_exhaustion_on_a_permanent_hang_is_a_typed_error() {
    let start = Instant::now();
    let plan = FaultPlan::new()
        .with(FaultSpec::always(0, 7, FaultKind::Hang))
        .with_hang_duration(HANG);
    let policy = FailurePolicy::Retry {
        max_attempts: 2,
        seed: 3,
    };
    let err = run_supervised(&plan, &policy, &watched()).expect_err("retries must exhaust");
    match err {
        SmcError::Particle(f) => {
            assert_eq!(f.particle, 7);
            assert_eq!(f.attempts, 2);
            assert!(matches!(f.kind, FailureKind::Timeout { .. }), "{f:?}");
        }
        other => panic!("expected SmcError::Particle, got {other:?}"),
    }
    assert!(start.elapsed() < Duration::from_secs(20));
}
